"""Tests for the ASCII/CSV reporting utilities."""

import numpy as np
import pytest

from repro.experiments.report import ascii_bars, ascii_chart, render_table, write_csv


class TestAsciiBars:
    def test_basic_bars(self):
        out = ascii_bars(np.array([1.0, 2.0, 4.0]))
        lines = out.splitlines()
        assert lines[0].startswith("proc   0")
        assert lines[2].count("#") > lines[0].count("#")

    def test_whiskers(self):
        out = ascii_bars(
            np.array([5.0, 5.0]),
            lo=np.array([2.0, 4.0]),
            hi=np.array([8.0, 6.0]),
        )
        assert "|" in out and "-" in out

    def test_title_and_label(self):
        out = ascii_bars(np.array([1.0]), title="T", label="cpu")
        assert out.startswith("T")
        assert "cpu   0" in out

    def test_zero_values(self):
        out = ascii_bars(np.zeros(3))
        assert "0.0" in out


class TestAsciiChart:
    def test_contains_legend_and_axis(self):
        out = ascii_chart({"a": np.arange(10)}, title="T")
        assert "T" in out
        assert "*=a" in out
        assert "t: 0 .. 9" in out

    def test_multiple_series_markers(self):
        out = ascii_chart({"x": np.zeros(5), "y": np.ones(5)})
        assert "*=x" in out and "o=y" in out

    def test_constant_series_no_crash(self):
        out = ascii_chart({"flat": np.full(7, 3.0)})
        assert "flat" in out

    def test_nan_handled(self):
        arr = np.array([1.0, np.nan, 3.0])
        out = ascii_chart({"a": arr})
        assert "a" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})


class TestRenderTable:
    def test_alignment_and_floats(self):
        out = render_table(["name", "v"], [["x", 1.23456], ["longer", 2]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in out
        assert "longer" in out

    def test_none_rendered_as_dash(self):
        out = render_table(["a"], [[None]])
        assert "-" in out

    def test_empty_rows(self):
        out = render_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        p = write_csv(tmp_path / "x.csv", {"t": [0, 1, 2], "v": [5.0, 6.0, 7.0]})
        text = p.read_text().strip().splitlines()
        assert text[0] == "t,v"
        assert text[1] == "0,5.0"
        assert len(text) == 4

    def test_unequal_lengths_padded(self, tmp_path):
        p = write_csv(tmp_path / "y.csv", {"a": [1, 2, 3], "b": [9]})
        rows = p.read_text().strip().splitlines()
        assert rows[2] == "2,"

    def test_creates_parent_dirs(self, tmp_path):
        p = write_csv(tmp_path / "sub" / "dir" / "z.csv", {"a": [1]})
        assert p.exists()
