"""Tests for the ablation drivers (A1/A2) and random-walk selection."""

import numpy as np
import pytest

from repro.core.selection import RandomWalkSelector
from repro.experiments.ablations import (
    _torus_for,
    baseline_comparison,
    locality_study,
)
from repro.network import Hypercube, Ring


class TestRandomWalkSelector:
    def test_contract(self, rng):
        sel = RandomWalkSelector(Hypercube(4), walk_length=3)
        for i in range(16):
            picks = sel.select(i, 3, rng)
            assert picks.shape == (3,)
            assert i not in picks
            assert len(np.unique(picks)) == 3

    def test_long_walks_approach_uniform_on_expander(self):
        """Lazy walks mix past the hypercube's bipartition: all 15
        other nodes are reached with comparable frequency."""
        rng = np.random.default_rng(0)
        topo = Hypercube(4)
        sel = RandomWalkSelector(topo, walk_length=24)
        counts = np.zeros(16)
        for _ in range(8000):
            counts[sel.select(0, 1, rng)] += 1
        freq = counts[1:] / counts[1:].sum()
        assert freq.min() > 0.02  # every node reachable (laziness!)
        assert freq.max() < 3 * freq.min()

    def test_short_walks_stay_local_on_ring(self):
        rng = np.random.default_rng(1)
        topo = Ring(32)
        sel = RandomWalkSelector(topo, walk_length=2)
        for _ in range(200):
            (pick,) = sel.select(0, 1, rng).tolist()
            assert topo.hop_cost(0, pick) <= 2

    def test_fallback_fills_on_tiny_graph(self, rng):
        sel = RandomWalkSelector(Ring(3), walk_length=1, max_retries=1)
        picks = sel.select(0, 2, rng)
        assert sorted(picks.tolist()) == [1, 2]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RandomWalkSelector(Ring(8), walk_length=0)
        sel = RandomWalkSelector(Ring(8), walk_length=2)
        with pytest.raises(ValueError):
            sel.select(0, 8, rng)

    def test_engine_integration(self):
        from repro import Engine, EngineConfig, LBParams

        topo = Hypercube(3)
        e = Engine(
            EngineConfig(n=8, params=LBParams(f=1.2, delta=2, C=4)),
            rng=0,
            selector=RandomWalkSelector(topo, walk_length=4),
        )
        rng = np.random.default_rng(0)
        for _ in range(60):
            e.step((rng.random(8) < 0.7).astype(np.int64))
        e.assert_invariants()
        assert e.total_ops > 0


class TestTorusFactory:
    def test_square(self):
        t = _torus_for(64)
        assert t.n == 64 and t.rows == 8

    def test_rectangular(self):
        t = _torus_for(32)
        assert t.n == 32 and t.rows in (4, 8) or t.rows * t.cols == 32

    def test_prime_rejected(self):
        with pytest.raises(ValueError):
            _torus_for(13)


class TestAblationDrivers:
    @pytest.fixture(scope="class")
    def a1(self):
        return baseline_comparison(n=16, steps=150, seed=0)

    def test_baseline_rows_present(self, a1):
        for name in (
            "Lüling-Monien",
            "RSU",
            "work stealing",
            "random scatter",
            "global oracle",
            "no balancing",
        ):
            assert name in a1.rows

    def test_baseline_ordering(self, a1):
        """LM beats the decentralised baselines, far below scatter and
        no-balance (absolute CV is loose at this small scale: mean
        loads of ~5 packets quantise hard)."""
        lm = a1.cv("Lüling-Monien")
        assert lm < 0.35
        assert lm < a1.cv("RSU")
        assert lm < a1.cv("work stealing")
        assert lm < a1.cv("random scatter") / 3
        assert lm < a1.cv("no balancing") / 2

    def test_baseline_render(self, a1):
        out = a1.render()
        assert "final CV" in out and "oracle" in out

    def test_locality_small(self):
        res = locality_study(n=16, steps=120, seed=1, walk_lengths=(2,))
        assert "global random (paper)" in res.rows
        assert "torus walk-2" in res.rows
        # radius-1 pools must be cheapest in hops
        assert res.rows["torus radius-1"][3] <= res.rows["global random (paper)"][3]
        assert "hops/packet" in res.render()
