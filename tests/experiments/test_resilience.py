"""Tests for the crash-burst resilience experiment and its artifact."""

import json

import pytest

from repro.experiments.resilience import (
    ResilienceConfig,
    render_resilience,
    resilience_experiment,
    validate_resilience,
    write_resilience_json,
)


def small_config(**kw):
    defaults = dict(n=16, horizon=60.0, seed=0)
    defaults.update(kw)
    return ResilienceConfig(**defaults)


class TestValidator:
    def make_doc(self):
        report = {
            "band": 1.9, "pre_fault_ratio": 1.1, "spike_ratio": 3.0,
            "spike_max_mean": 4.0, "reentry_time": 1.0,
            "reentry_snapshots": 2, "final_ratio": 0.4,
        }
        run = {
            "report": dict(report),
            "counters": {
                "total_ops": 10, "dropped_ops": 1, "packets_migrated": 20,
                "retries": 2, "give_ups": 0, "fault_stats": None,
            },
            "series": {
                "times": [0.0, 1.0], "extreme_ratio": [1.0, 1.1],
                "max_mean": [1.0, 1.0],
            },
        }
        return {
            "schema": "repro/resilience", "version": 1, "band": 1.9,
            "config": {}, "plan": {},
            "faulted": run,
            "baseline": json.loads(json.dumps(run)),
        }

    def test_accepts_wellformed(self):
        assert validate_resilience(self.make_doc()) == []

    def test_rejects_wrong_schema_tag(self):
        doc = self.make_doc()
        doc["schema"] = "something/else"
        assert any("repro/resilience" in p for p in validate_resilience(doc))

    def test_rejects_missing_report_field(self):
        doc = self.make_doc()
        del doc["faulted"]["report"]["spike_ratio"]
        assert any("spike_ratio" in p for p in validate_resilience(doc))

    def test_rejects_misaligned_series(self):
        doc = self.make_doc()
        doc["baseline"]["series"]["times"].append(2.0)
        assert any("unequal series" in p for p in validate_resilience(doc))

    def test_rejects_non_int_counter(self):
        doc = self.make_doc()
        doc["faulted"]["counters"]["total_ops"] = 10.5
        assert any("total_ops" in p for p in validate_resilience(doc))


@pytest.mark.tier2
class TestResilienceEndToEnd:
    @pytest.fixture(scope="class")
    def doc(self):
        return resilience_experiment(small_config())

    def test_document_schema_valid(self, doc):
        assert validate_resilience(doc) == []

    def test_spike_leaves_band_and_recovers(self, doc):
        faulted = doc["faulted"]["report"]
        assert faulted["spike_ratio"] > doc["band"]
        assert faulted["reentry_time"] is not None
        assert faulted["final_ratio"] <= doc["band"]

    def test_baseline_stays_in_band(self, doc):
        baseline = doc["baseline"]["report"]
        assert baseline["spike_ratio"] <= doc["band"]
        assert doc["baseline"]["counters"]["fault_stats"] is None

    def test_fault_counters_recorded(self, doc):
        fs = doc["faulted"]["counters"]["fault_stats"]
        assert fs["crashes"] == len(doc["plan"]["crashes"]) > 0

    def test_deterministic(self, doc):
        again = resilience_experiment(small_config())
        assert again == doc

    def test_json_roundtrip(self, doc, tmp_path):
        path = tmp_path / "resilience.json"
        write_resilience_json(path, doc)
        assert validate_resilience(json.loads(path.read_text())) == []

    def test_render(self, doc):
        out = render_resilience(doc)
        assert "Theorem-4 band" in out
        assert "faulted" in out and "baseline" in out
