"""Tests for the figure/table regenerators (small-scale smoke + shape)."""

import numpy as np
import pytest

from repro.experiments.figures import figure6, figure7, figure9
from repro.experiments.tables import (
    lemma4_table,
    lemma56_table,
    table1,
    theorem12_table,
    theorem3_table,
)


class TestFigure6:
    @pytest.fixture(scope="class")
    def small(self):
        return figure6(
            deltas=(1, 2), fs=(1.1, 1.2), ns=(3, 5, 10), t=40, trials=4000, seed=0
        )

    def test_surfaces_keys(self, small):
        assert set(small.surfaces) == {(1, 1.1), (1, 1.2), (2, 1.1), (2, 1.2)}

    def test_surface_shape(self, small):
        assert small.surfaces[(1, 1.1)].shape == (3, 41)

    def test_vd_small_in_general(self, small):
        """The paper's headline: VD is small (< ~0.6 everywhere)."""
        for surf in small.surfaces.values():
            assert np.nanmax(surf) < 0.8

    def test_vd_larger_for_larger_f(self, small):
        a = np.nanmean(small.surfaces[(1, 1.1)][:, -1])
        b = np.nanmean(small.surfaces[(1, 1.2)][:, -1])
        assert b > a

    def test_delta_ge_n_is_nan(self):
        res = figure6(deltas=(4,), fs=(1.1,), ns=(3, 8), t=10, trials=500, seed=0)
        assert np.isnan(res.surfaces[(4, 1.1)][0]).all()
        assert not np.isnan(res.surfaces[(4, 1.1)][1]).any()

    def test_render_and_csv(self, small, tmp_path):
        out = small.render()
        assert "delta=1 f=1.1" in out
        paths = small.to_csv(tmp_path)
        assert len(paths) == 4
        assert all(p.exists() for p in paths)


class TestQualityFigures:
    @pytest.fixture(scope="class")
    def fig7_small(self):
        return figure7(fs=(1.1,), runs=2, seed=0)

    def test_envelope_kind_renders_chart(self, fig7_small):
        out = fig7_small.render()
        assert "Balancing quality, delta=1" in out
        assert "max" in out and "min" in out

    def test_csv_export(self, fig7_small, tmp_path):
        paths = fig7_small.to_csv(tmp_path, stem="fig7")
        assert any("envelope" in p.name for p in paths)
        assert any("distribution" in p.name for p in paths)

    def test_figure9_distribution_render(self):
        fig = figure9(fs=(1.8,), runs=2, seed=1)
        out = fig.render()
        assert "Distribution, delta=1" in out
        assert "tick" in out


class TestTables:
    def test_theorem12_within_bounds(self):
        t = theorem12_table(
            grid=((16, 1, 1.1), (32, 2, 1.5)), t=40, trials=20_000, seed=0
        )
        for n, delta, f, sim, g_t, fx, limit in t.rows:
            assert sim == pytest.approx(g_t, rel=0.02)
            assert g_t <= fx + 1e-9
            assert fx <= limit + 1e-9

    def test_theorem3_orders(self):
        t = theorem3_table()
        for _, _, _, lo, hi, lo_inf, hi_inf in t.rows:
            assert lo_inf <= lo <= 1 <= hi <= hi_inf

    def test_table1_structure(self):
        tbl = table1(c_values=(4, 8), runs=2, seed=0)
        rows = dict(tbl.rows())
        assert len(rows["total_borrow"]) == 2
        # total borrow roughly constant in C; remote borrow decreasing
        assert rows["remote_borrow"][0] >= rows["remote_borrow"][1]

    def test_lemma4_all_pass(self):
        t = lemma4_table(n_ops=50, seed=0)
        for row in t.rows:
            assert row[-1] is True  # generated >= m

    def test_lemma56_bounds_hold(self):
        t = lemma56_table(
            grid=((1000, 500, 32, 1, 1.2),), runs=5, seed=0
        )
        (row,) = t.rows
        x, c, n, d, f, measured, lo, hi, l6, model = row
        assert lo - 1 <= measured <= (hi if hi is not None else measured) + 1
        assert model is not None

    def test_render(self):
        assert "FIX" in theorem3_table().render()
