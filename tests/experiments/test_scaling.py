"""Tests for the scaling experiment driver."""

import numpy as np

from repro.experiments.scaling import scaling_experiment


class TestScaling:
    def test_small_sweep(self):
        res = scaling_experiment(ns=(8, 16), steps=80, runs=2, seed=1)
        assert res.ns == (8, 16)
        assert res.rel_spread.shape == (2,)
        assert (res.rel_spread >= 0).all()
        assert (res.ops_per_proc_tick > 0).all()

    def test_render(self):
        res = scaling_experiment(ns=(8,), steps=50, runs=1, seed=0)
        out = res.render()
        assert "rel spread" in out and "8" in out

    def test_quality_flat_helper(self):
        res = scaling_experiment(ns=(8, 16, 32), steps=100, runs=2, seed=2)
        # just exercises both branches deterministically
        assert isinstance(res.quality_flat(tolerance=100.0), bool)
        assert res.quality_flat(tolerance=100.0)

    def test_reproducible(self):
        a = scaling_experiment(ns=(8,), steps=60, runs=2, seed=3)
        b = scaling_experiment(ns=(8,), steps=60, runs=2, seed=3)
        assert np.array_equal(a.rel_spread, b.rel_spread)
        assert np.array_equal(a.ops_per_proc_tick, b.ops_per_proc_tick)
