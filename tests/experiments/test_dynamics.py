"""Tests for the dynamics degradation sweep and its artifact."""

import json

import pytest

from repro.experiments.dynamics import (
    TOPOLOGIES,
    DynamicsConfig,
    build_topology,
    dynamics_experiment,
    render_dynamics,
    validate_dynamics,
    write_dynamics_json,
)


class TestConfig:
    def test_rejects_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            DynamicsConfig(topologies=("complete", "bogus"))

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="non-empty"):
            DynamicsConfig(churn_rates=())

    def test_grid_is_cross_product_in_document_order(self):
        cfg = DynamicsConfig(
            topologies=("ring", "complete"),
            churn_rates=(0.0, 0.1),
            skews=(0.5,),
        )
        assert cfg.cells() == [
            ("ring", 0.0, 0.5), ("ring", 0.1, 0.5),
            ("complete", 0.0, 0.5), ("complete", 0.1, 0.5),
        ]

    def test_smoke_covers_three_topologies(self):
        cfg = DynamicsConfig.smoke()
        assert len(cfg.topologies) >= 3


class TestBuildTopology:
    def test_every_registered_family_builds(self):
        for name in TOPOLOGIES:
            g = build_topology(name, 16, seed=0)
            assert g.n == 16
            assert g.is_connected()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology("bogus", 16)

    def test_power_of_two_required_where_it_matters(self):
        with pytest.raises(ValueError):
            build_topology("hypercube", 12)


class TestValidator:
    def make_doc(self):
        cell = {
            "topology": "ring",
            "churn": {"rate": 0.1, "events": 3, "rewires": 1,
                      "leaves": 1, "joins": 1},
            "skew": 0.0, "skew_ratio": 1.0, "seed": 0,
            "band_occupancy": 0.9, "worst_ratio": 2.0, "final_ratio": 1.0,
            "recovery": {"events": 3, "recovered": 3,
                         "mean_time": 0.4, "max_time": 1.0},
            "counters": {"total_ops": 10, "dropped_ops": 0,
                         "packets_migrated": 5, "retries": 0, "give_ups": 0},
        }
        return {
            "schema": "repro/dynamics", "version": 1, "band": 1.9,
            "config": {"topologies": ["ring"], "churn_rates": [0.1],
                       "skews": [0.0]},
            "cells": [json.loads(json.dumps(cell))],
        }

    def test_accepts_wellformed(self):
        assert validate_dynamics(self.make_doc()) == []

    def test_rejects_wrong_schema_tag(self):
        doc = self.make_doc()
        doc["schema"] = "something/else"
        assert any("repro/dynamics" in p for p in validate_dynamics(doc))

    def test_rejects_grid_size_mismatch(self):
        doc = self.make_doc()
        doc["config"]["churn_rates"] = [0.1, 0.3]
        assert any("expected 2 cells" in p for p in validate_dynamics(doc))

    def test_rejects_missing_cell_field(self):
        doc = self.make_doc()
        del doc["cells"][0]["band_occupancy"]
        assert any("band_occupancy" in p for p in validate_dynamics(doc))

    def test_rejects_non_int_counter(self):
        doc = self.make_doc()
        doc["cells"][0]["counters"]["retries"] = 1.5
        assert any("retries" in p for p in validate_dynamics(doc))

    def test_rejects_missing_recovery_time(self):
        doc = self.make_doc()
        del doc["cells"][0]["recovery"]["mean_time"]
        assert any("mean_time" in p for p in validate_dynamics(doc))


@pytest.mark.tier2
class TestDynamicsEndToEnd:
    @pytest.fixture(scope="class")
    def doc(self):
        return dynamics_experiment(DynamicsConfig.smoke(), backend="native")

    def test_document_schema_valid(self, doc):
        assert validate_dynamics(doc) == []

    def test_covers_at_least_three_topologies(self, doc):
        assert len({c["topology"] for c in doc["cells"]}) >= 3

    def test_zero_churn_cells_have_no_events(self, doc):
        for cell in doc["cells"]:
            if cell["churn"]["rate"] == 0.0:
                assert cell["churn"]["events"] == 0
            if cell["skew"] == 0.0:
                assert cell["skew_ratio"] == 1.0
            else:
                assert cell["skew_ratio"] > 1.0

    def test_deterministic(self, doc):
        again = dynamics_experiment(DynamicsConfig.smoke(), backend="native")
        assert again == doc

    def test_seed_changes_document(self, doc):
        other = dynamics_experiment(
            DynamicsConfig.smoke(seed=1), backend="native"
        )
        assert other["cells"] != doc["cells"]

    def test_json_roundtrip(self, doc, tmp_path):
        path = tmp_path / "dynamics.json"
        write_dynamics_json(path, doc)
        assert validate_dynamics(json.loads(path.read_text())) == []

    def test_render(self, doc):
        out = render_dynamics(doc)
        assert "Theorem-4 band" in out
        assert "occupancy" in out
        for name in ("complete", "ring", "hypercube"):
            assert name in out
