"""Tests for experiment configuration and the quality runner."""

import numpy as np
import pytest

from repro.experiments.config import QualityConfig, default_runs
from repro.experiments.runner import quality_experiment


class TestDefaultRuns:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "100")
        assert default_runs() == 100

    def test_capped_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS", raising=False)
        assert default_runs(100) <= 25

    def test_minimum_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "0")
        assert default_runs() == 1


class TestQualityConfig:
    def test_paper_defaults(self):
        cfg = QualityConfig()
        assert cfg.n == 64
        assert cfg.steps == 500
        assert cfg.g_range == (0.1, 0.9)
        assert cfg.c_range == (0.1, 0.7)
        assert cfg.len_range == (150, 400)
        assert cfg.snapshot_ticks == (50, 200, 400)

    def test_params_derived(self):
        cfg = QualityConfig(f=1.8, delta=4, C=8)
        p = cfg.params
        assert p.f == 1.8 and p.delta == 4 and p.C == 8

    def test_with_(self):
        cfg = QualityConfig().with_(C=16)
        assert cfg.C == 16


class TestQualityExperiment:
    @pytest.fixture(scope="class")
    def small_result(self):
        cfg = QualityConfig(
            n=16, steps=120, runs=4, seed=1, snapshot_ticks=(50, 100)
        )
        return quality_experiment(cfg)

    def test_envelope_shape(self, small_result):
        env = small_result.envelope
        assert env.mean.shape == (121,)
        assert env.runs == 4
        assert (env.min <= env.max).all()

    def test_snapshots_present(self, small_result):
        assert set(small_result.snapshots) == {50, 100}
        snap = small_result.snapshots[50]
        assert snap["mean"].shape == (16,)
        assert (snap["min"] <= snap["max"]).all()

    def test_counters_per_run(self, small_result):
        assert len(small_result.counters) == 4

    def test_ops_positive(self, small_result):
        assert small_result.mean_ops > 0

    def test_reproducible(self):
        cfg = QualityConfig(n=8, steps=50, runs=2, seed=3, snapshot_ticks=(25,))
        a = quality_experiment(cfg)
        b = quality_experiment(cfg)
        assert np.array_equal(a.envelope.mean, b.envelope.mean)
        assert a.mean_ops == b.mean_ops

    def test_balanced_quality_per_run(self):
        """Within a single run the end-state max/mean stays near 1 —
        the headline claim.  (The envelope across runs is wider because
        each run draws its own random workload volume.)"""
        from repro import LBParams, run_simulation
        from repro.workload import Section7Workload

        res = run_simulation(
            16,
            LBParams(f=1.1, delta=2, C=4),
            Section7Workload(16, 120, layout_rng=5),
            steps=120,
            seed=5,
        )
        final = res.loads[-1]
        assert final.max() <= 1.4 * final.mean() + 3
