"""Figure 6 computation modes agree with each other."""

import numpy as np

from repro.experiments.figures import figure6


class TestFigure6Modes:
    def test_moments_mode_instant_and_exact(self):
        """mode='moments' needs no trials and matches MC."""
        kw = dict(deltas=(1, 2), fs=(1.1,), ns=(4, 8), t=30, seed=0)
        exact = figure6(mode="moments", **kw)
        mc = figure6(mode="exact", trials=40_000, **kw)
        for key in exact.surfaces:
            a, b = exact.surfaces[key], mc.surfaces[key]
            mask = ~np.isnan(a)
            assert np.allclose(a[mask], b[mask], atol=0.02)

    def test_moments_mode_full_sweep_fast(self):
        """The whole paper-scale Figure 6 in moments mode is cheap."""
        import time

        t0 = time.perf_counter()
        res = figure6(mode="moments", t=150, seed=0)
        assert time.perf_counter() - t0 < 5.0
        # full shape assertions at zero sampling noise
        for delta in (1, 2, 4):
            a = res.final_vd(delta, 1.1)
            b = res.final_vd(delta, 1.2)
            mask = ~np.isnan(a)
            # f raises VD everywhere (tolerance: deterministic configs
            # like delta = n-1 give VD = 0 up to float rounding)
            assert (b[mask] >= a[mask] - 1e-6).all()

    def test_relaxed_vs_exact_same_order_of_magnitude(self):
        kw = dict(deltas=(2,), fs=(1.2,), ns=(6,), t=25, seed=1, trials=20_000)
        relaxed = figure6(mode="relaxed", **kw)
        exact = figure6(mode="exact", **kw)
        a = relaxed.surfaces[(2, 1.2)][0, -1]
        b = exact.surfaces[(2, 1.2)][0, -1]
        assert abs(a - b) < 0.1
