"""Tests for the demo application workloads."""

import numpy as np
import pytest

from repro import LBParams, run_simulation
from repro.apps import BranchAndBoundWorkload, TreeSearchWorkload


class TestBranchAndBound:
    def test_seeds_generated_first(self, rng):
        w = BranchAndBoundWorkload(4, seeds=3)
        a = w.actions(0, np.zeros(4), rng)
        assert a[0] == 1
        assert (a[1:] == 0).all()

    def test_expansion_spawns_pending(self):
        rng = np.random.default_rng(0)
        w = BranchAndBoundWorkload(4, p0=1.0, branching_factor=3, seeds=1)
        w.actions(0, np.zeros(4), rng)  # generate the seed
        a = w.actions(1, np.array([1, 0, 0, 0]), rng)  # expand it
        assert a[0] == -1
        assert w.pending[0] == 3

    def test_branch_probability_decays(self):
        w = BranchAndBoundWorkload(4, p0=0.8, tau=100)
        w.total_consumed = 200
        assert w.branch_probability < 0.8 * 0.2

    def test_burnout(self):
        """With decaying p, the search eventually finishes."""
        res = run_simulation(
            8,
            LBParams(f=1.3, delta=2, C=4),
            BranchAndBoundWorkload(8, p0=0.6, tau=300),
            steps=2000,
            seed=0,
        )
        assert res.loads[-1].sum() == 0  # all work consumed

    def test_supercritical_explosion(self):
        """Early phase: load grows well beyond the seeds."""
        w = BranchAndBoundWorkload(8, p0=0.9, branching_factor=3, tau=1e9, seeds=2)
        res = run_simulation(
            8, LBParams(f=1.3, delta=2, C=4), w, steps=150, seed=1
        )
        assert res.loads.sum(axis=1).max() > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            BranchAndBoundWorkload(4, p0=0.0)
        with pytest.raises(ValueError):
            BranchAndBoundWorkload(4, branching_factor=0)
        with pytest.raises(ValueError):
            BranchAndBoundWorkload(4, tau=-1)


class TestTreeSearch:
    def test_bounded_depth_terminates(self):
        w = TreeSearchWorkload(8, max_depth=6, seeds=4)
        res = run_simulation(
            8, LBParams(f=1.3, delta=2, C=4), w, steps=3000, seed=2
        )
        assert res.loads[-1].sum() == 0
        assert w.total_expanded > 0

    def test_children_tracked_with_depth(self):
        rng = np.random.default_rng(3)
        w = TreeSearchWorkload(2, max_depth=3, child_probs=(0.0, 0.0, 1.0), seeds=1)
        w.actions(0, np.zeros(2), rng)  # generate seed (depth 0)
        w.actions(1, np.array([1, 0]), rng)  # expand -> 2 children depth 1
        assert w.pending[0] == 2
        assert w.pending_depth[0] == [1, 1]

    def test_leaves_do_not_spawn(self):
        rng = np.random.default_rng(4)
        w = TreeSearchWorkload(2, max_depth=1, child_probs=(0.0, 0.0, 1.0), seeds=1)
        w.actions(0, np.zeros(2), rng)       # seed at depth 0
        w.actions(1, np.array([1, 0]), rng)  # expand -> 2 at depth 1
        w.actions(2, np.zeros(2), rng)       # pay one pending
        w.actions(3, np.array([1, 0]), rng)  # pay second pending
        # expand the two depth-1 leaves: no new children
        w.actions(4, np.array([2, 0]) - 1, rng)
        assert w.pending[0] == 0

    def test_finished_flag(self):
        w = TreeSearchWorkload(4, seeds=2)
        assert not w.finished
        w.pending[:] = 0
        w.pending_depth = [[] for _ in range(4)]
        assert w.finished

    def test_validation(self):
        with pytest.raises(ValueError):
            TreeSearchWorkload(4, max_depth=0)
        with pytest.raises(ValueError):
            TreeSearchWorkload(4, child_probs=(0.5, 0.1))
        with pytest.raises(ValueError):
            TreeSearchWorkload(4, mix_rate=2.0)
