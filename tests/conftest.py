"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property tests fast enough for CI-style runs while exercising a
# meaningful search space; the "thorough" profile is for local deep runs
# (select with HYPOTHESIS_PROFILE=thorough).
settings.register_profile(
    "default",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=500, deadline=None)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
