"""Tests for the token bucket and the admission controller."""

import pytest

from repro.service.admission import SHED_REASONS, AdmissionController, TokenBucket
from repro.service.queues import TaskQueues
from repro.service.traffic import Arrival


def arrival(a=0, b=1, critical=True, t=0.0):
    return Arrival(time=t, targets=(a, b), critical=critical)


class TestTokenBucket:
    def test_starts_full_and_refills(self):
        b = TokenBucket(rate=2.0, burst=2.0)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)      # burst spent
        assert b.try_take(0.5)          # 0.5 * 2 tokens accrued
        assert not b.try_take(0.5)

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            assert b.try_take(100.0)
        assert not b.try_take(100.0)

    def test_scale_slows_refill(self):
        b = TokenBucket(rate=4.0, burst=1.0)
        assert b.try_take(0.0)
        b.set_scale(0.25)               # effective rate 1/unit
        assert not b.try_take(0.5)
        assert b.try_take(1.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 1.0).set_scale(0.0)


class TestAdmissionController:
    def make(self, *, rate=100.0, burst=100.0, cap=4, n=2):
        queues = TaskQueues(n, cap=cap)
        return AdmissionController(TokenBucket(rate, burst), queues), queues

    def test_admits_and_counts(self):
        ctl, q = self.make()
        admitted, target, reason = ctl.decide(0.0, arrival(), q.depths())
        assert admitted and reason is None and target == 0
        assert ctl.counters() == {
            "offered": 1, "admitted": 1, "shed": 0,
            "shed_by_reason": {"brownout": 0, "bucket": 0, "depth": 0},
        }

    def test_brownout_sheds_only_noncritical(self):
        ctl, q = self.make()
        ctl.set_brownout(True)
        ok, _, reason = ctl.decide(0.0, arrival(critical=False), q.depths())
        assert not ok and reason == "brownout"
        ok, _, reason = ctl.decide(0.0, arrival(critical=True), q.depths())
        assert ok and reason is None

    def test_bucket_gate(self):
        ctl, q = self.make(rate=1.0, burst=1.0)
        assert ctl.decide(0.0, arrival(), q.depths())[0]
        ok, _, reason = ctl.decide(0.0, arrival(), q.depths())
        assert not ok and reason == "bucket"
        assert ctl.shed == {"brownout": 0, "bucket": 1, "depth": 0}

    def test_depth_gate_rejects_full_target(self):
        ctl, q = self.make(cap=1)
        for _ in range(2):            # fill both queues via admission
            ok, target, _ = ctl.decide(0.0, arrival(), q.depths())
            assert ok
            q.push(target, 0.0)
        ok, _, reason = ctl.decide(0.0, arrival(), q.depths())
        assert not ok and reason == "depth"

    def test_brownout_precedes_bucket(self):
        # a browned-out arrival must not consume a token
        ctl, q = self.make(rate=1.0, burst=1.0)
        ctl.set_brownout(True)
        assert ctl.decide(0.0, arrival(critical=False), q.depths())[2] == "brownout"
        assert ctl.decide(0.0, arrival(critical=True), q.depths())[0]

    def test_shed_total_and_reason_order(self):
        ctl, _ = self.make()
        assert ctl.shed_total() == 0
        assert SHED_REASONS == ("brownout", "bucket", "depth")
