"""Tests for the open-loop traffic generators."""

import numpy as np
import pytest

from repro.service.traffic import (
    Arrival,
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    ReplayTraffic,
    make_traffic,
)
from repro.workload.trace import ArrivalTrace


class TestArrival:
    def test_routes_to_shorter_queue(self):
        a = Arrival(time=1.0, targets=(2, 5), critical=True)
        assert a.route(np.array([0, 0, 3, 0, 0, 1])) == 5
        assert a.route(np.array([0, 0, 1, 0, 0, 3])) == 2

    def test_tie_goes_to_first_candidate(self):
        a = Arrival(time=1.0, targets=(4, 1), critical=False)
        assert a.route(np.array([0, 2, 0, 0, 2])) == 4


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = PoissonTraffic(8, 3.0, seed=7).arrivals(50.0)
        b = PoissonTraffic(8, 3.0, seed=7).arrivals(50.0)
        assert a == b
        assert a != PoissonTraffic(8, 3.0, seed=8).arrivals(50.0)

    def test_rate_matches_expectation(self):
        arr = PoissonTraffic(8, 5.0, seed=0).arrivals(200.0)
        # 1000 expected arrivals; 5 sigma ~ 160
        assert 840 <= len(arr) <= 1160

    def test_sorted_within_horizon_and_targets_in_range(self):
        arr = PoissonTraffic(4, 2.0, seed=1).arrivals(30.0)
        times = [a.time for a in arr]
        assert times == sorted(times)
        assert all(0 < a.time <= 30.0 for a in arr)
        assert all(
            0 <= a.targets[0] < 4 and 0 <= a.targets[1] < 4 for a in arr
        )

    def test_critical_frac_extremes(self):
        all_crit = PoissonTraffic(4, 3.0, seed=0, critical_frac=1.0)
        none_crit = PoissonTraffic(4, 3.0, seed=0, critical_frac=0.0)
        assert all(a.critical for a in all_crit.arrivals(20.0))
        assert not any(a.critical for a in none_crit.arrivals(20.0))

    def test_zero_rate_is_silent(self):
        assert PoissonTraffic(4, 0.0, seed=0).arrivals(10.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(0, 1.0)
        with pytest.raises(ValueError):
            PoissonTraffic(4, -1.0)
        with pytest.raises(ValueError):
            PoissonTraffic(4, 1.0, critical_frac=1.5)


class TestBursty:
    def test_burst_window_is_denser(self):
        t = BurstyTraffic(
            8, 3.0, burst_at=20.0, burst_duration=10.0, burst_mult=4.0, seed=0
        )
        arr = t.arrivals(60.0)
        in_burst = sum(1 for a in arr if 20.0 <= a.time < 30.0)
        before = sum(1 for a in arr if 5.0 <= a.time < 15.0)
        assert in_burst > 2 * before

    def test_unit_multiplier_degenerates_to_poisson(self):
        # thinning keeps the stream position independent of acceptance,
        # so mult=1 reproduces the plain Poisson schedule exactly
        bursty = BurstyTraffic(
            8, 3.0, burst_at=10.0, burst_duration=5.0, burst_mult=1.0, seed=3
        )
        plain = PoissonTraffic(8, 3.0, seed=3)
        assert bursty.arrivals(40.0) == plain.arrivals(40.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyTraffic(4, 1.0, burst_at=0, burst_duration=0)
        with pytest.raises(ValueError):
            BurstyTraffic(4, 1.0, burst_at=0, burst_duration=1, burst_mult=0.5)


class TestDiurnal:
    def test_peak_denser_than_trough(self):
        t = DiurnalTraffic(8, 4.0, period=40.0, amp=0.9, seed=0)
        arr = t.arrivals(40.0)
        # sin peaks on [0, 20), troughs on [20, 40)
        peak_half = sum(1 for a in arr if a.time < 20.0)
        trough_half = len(arr) - peak_half
        assert peak_half > trough_half

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTraffic(4, 1.0, period=0.0)
        with pytest.raises(ValueError):
            DiurnalTraffic(4, 1.0, period=10.0, amp=2.0)


class TestReplay:
    def test_round_trips_generated_stream(self):
        gen = PoissonTraffic(6, 2.0, seed=5)
        arr = gen.arrivals(25.0)
        trace = ArrivalTrace.from_arrivals(6, arr)
        assert ReplayTraffic(trace).arrivals(25.0) == arr

    def test_horizon_truncates(self):
        arr = PoissonTraffic(6, 2.0, seed=5).arrivals(25.0)
        trace = ArrivalTrace.from_arrivals(6, arr)
        short = ReplayTraffic(trace).arrivals(10.0)
        assert short == [a for a in arr if a.time <= 10.0]


class TestMakeTraffic:
    def test_constructs_each_profile(self):
        assert make_traffic("poisson", 4, 1.0, seed=0).name == "poisson"
        assert make_traffic(
            "bursty", 4, 1.0, seed=0, burst_at=1.0, burst_duration=2.0
        ).name == "bursty"
        assert make_traffic("diurnal", 4, 1.0, seed=0).name == "diurnal"

    def test_unknown_profile_lists_known(self):
        with pytest.raises(ValueError, match="poisson, bursty, diurnal"):
            make_traffic("squarewave", 4, 1.0)

    def test_describe_is_json_friendly(self):
        import json

        for profile in ("poisson", "bursty", "diurnal"):
            t = make_traffic(
                profile, 4, 1.0, seed=0, burst_at=1.0, burst_duration=2.0
            )
            json.dumps(t.describe())
