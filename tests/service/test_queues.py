"""Tests for the bounded per-processor task queues."""

import numpy as np
import pytest

from repro.core.balance import even_split
from repro.service.queues import TaskQueues


class TestBasics:
    def test_push_pop_fifo_and_sojourn(self):
        q = TaskQueues(2, cap=4)
        q.push(0, 1.0)
        q.push(0, 2.0)
        assert q.depth(0) == 2
        assert q.pop_oldest(0, 5.0) == pytest.approx(4.0)  # the t=1 task
        assert q.pop_oldest(0, 5.0) == pytest.approx(3.0)
        assert q.completed == 2
        assert q.sojourns == [4.0, 3.0]

    def test_full_queue_rejects_push(self):
        q = TaskQueues(1, cap=2)
        q.push(0, 0.0)
        q.push(0, 0.0)
        assert q.full(0)
        with pytest.raises(RuntimeError, match="admission must"):
            q.push(0, 1.0)

    def test_depths_and_total(self):
        q = TaskQueues(3, cap=5)
        q.push(1, 0.0)
        q.push(1, 0.0)
        q.push(2, 0.0)
        assert q.depths().tolist() == [0, 2, 1]
        assert q.total() == 3

    def test_hot_fraction(self):
        q = TaskQueues(4, cap=4)
        for _ in range(3):
            q.push(0, 0.0)
        q.push(1, 0.0)
        # watermark 0.5 -> hot when depth > 2
        assert q.hot_fraction(0.5) == pytest.approx(0.25)
        assert q.hot_fraction(0.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskQueues(0, cap=1)
        with pytest.raises(ValueError):
            TaskQueues(1, cap=0)


class TestMigrate:
    def test_mirrors_even_split(self):
        q = TaskQueues(3, cap=10)
        for t in range(6):
            q.push(0, float(t))
        alive = np.array([0, 1, 2])
        before = np.array([6, 0, 0])
        after = even_split(6, 3, start=0)
        moved = q.migrate(alive, before, after)
        assert moved == 6 - int(after[0])
        assert q.depths().tolist() == list(after)
        assert q.migrated_tasks == moved

    def test_donors_keep_oldest_receivers_stay_sorted(self):
        q = TaskQueues(2, cap=10)
        for t in (0.0, 1.0, 2.0, 3.0):
            q.push(0, t)
        q.push(1, 0.5)
        # donor 0 gives its two newest (2.0, 3.0); receiver 1 merges
        q.migrate(np.array([0, 1]), np.array([4, 1]), np.array([2, 3]))
        assert list(q._q[0]) == [0.0, 1.0]
        assert list(q._q[1]) == [0.5, 2.0, 3.0]

    def test_noop_when_nothing_moves(self):
        q = TaskQueues(2, cap=4)
        q.push(0, 0.0)
        q.push(1, 0.0)
        assert q.migrate(
            np.array([0, 1]), np.array([1, 1]), np.array([1, 1])
        ) == 0
        assert q.migrated_tasks == 0


class TestStatistics:
    def test_percentiles_empty_is_zero(self):
        q = TaskQueues(1, cap=1)
        assert q.sojourn_percentiles(50, 99) == [0.0, 0.0]

    def test_percentiles_computed(self):
        q = TaskQueues(1, cap=10)
        for t in range(10):
            q.push(0, 0.0)
            q.pop_oldest(0, float(t + 1))
        p50, p99 = q.sojourn_percentiles(50, 99)
        assert p50 == pytest.approx(5.5)
        assert p99 > p50

    def test_worst_sojourns_ranked(self):
        q = TaskQueues(1, cap=10)
        for sj in (1.0, 9.0, 4.0):
            q.push(0, 0.0)
            q.pop_oldest(0, sj)
        worst = q.worst_sojourns(k=2)
        assert [s for s, _ in worst] == [9.0, 4.0]
        assert all(0 < share <= 1 for _, share in worst)
