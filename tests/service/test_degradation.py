"""Tests for the degradation ladder state machine."""

import pytest

from repro.params import LBParams
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.degradation import STATES, DegradationLadder, LadderConfig
from repro.service.queues import TaskQueues


class FakeEngine:
    """Just enough engine surface for the ladder: params + trigger."""

    def __init__(self, f=1.3):
        self.params = LBParams(f=f, delta=2, C=4)
        self.trigger_f = f

    def set_trigger_factor(self, f):
        self.trigger_f = f


def make(cfg=None, f=1.3):
    queues = TaskQueues(4, cap=4)
    admission = AdmissionController(TokenBucket(10.0, 10.0), queues)
    engine = FakeEngine(f=f)
    ladder = DegradationLadder(
        cfg or LadderConfig(), admission=admission, engine=engine
    )
    return ladder, admission, engine


class TestConfig:
    def test_defaults_valid(self):
        LadderConfig()

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            LadderConfig(exit_shed=0.5, enter_shed=0.3)
        with pytest.raises(ValueError):
            LadderConfig(enter_bp=0.9, enter_shed=0.3)
        with pytest.raises(ValueError):
            LadderConfig(hold=0)
        with pytest.raises(ValueError):
            LadderConfig(shed_scale=0.0)
        with pytest.raises(ValueError):
            LadderConfig(high_watermark=1.5)
        with pytest.raises(ValueError):
            LadderConfig(trigger_widen=0.0)


class TestTransitions:
    def test_starts_healthy(self):
        ladder, _, _ = make()
        assert ladder.state == "healthy"
        assert ladder.transitions == []

    def test_hot_enters_backpressure(self):
        ladder, admission, _ = make()
        ladder.evaluate(1.0, hot=0.2, depth_sheds=0)
        assert ladder.state == "backpressure"
        assert admission.bucket.scale == pytest.approx(0.7)
        assert not admission.brownout

    def test_depth_shed_jumps_straight_to_shedding(self):
        ladder, admission, engine = make(f=1.3)
        ladder.evaluate(1.0, hot=0.0, depth_sheds=2)
        assert ladder.state == "shedding"
        assert admission.brownout
        assert admission.bucket.scale == pytest.approx(0.4)
        # trigger widened: 1 + (1.3-1)*0.5
        assert engine.trigger_f == pytest.approx(1.15)

    def test_very_hot_jumps_straight_to_shedding(self):
        ladder, _, _ = make()
        ladder.evaluate(1.0, hot=0.5, depth_sheds=0)
        assert ladder.state == "shedding"

    def test_full_cycle_restores_knobs(self):
        cfg = LadderConfig(hold=2)
        ladder, admission, engine = make(cfg)
        ladder.evaluate(1.0, hot=0.6, depth_sheds=1)      # -> shedding
        ladder.evaluate(2.0, hot=0.1, depth_sheds=0)      # -> recovering
        assert ladder.state == "recovering"
        assert not admission.brownout
        assert admission.bucket.scale == pytest.approx(0.7)
        assert engine.trigger_f == pytest.approx(1.15)    # still widened
        ladder.evaluate(3.0, hot=0.0, depth_sheds=0)      # calm 1
        assert ladder.state == "recovering"
        ladder.evaluate(4.0, hot=0.0, depth_sheds=0)      # calm 2 -> healthy
        assert ladder.state == "healthy"
        assert admission.bucket.scale == pytest.approx(1.0)
        assert engine.trigger_f == pytest.approx(1.3)     # restored

    def test_recovering_relapses_when_pressed(self):
        ladder, _, _ = make()
        ladder.evaluate(1.0, hot=0.6, depth_sheds=0)      # -> shedding
        ladder.evaluate(2.0, hot=0.1, depth_sheds=0)      # -> recovering
        ladder.evaluate(3.0, hot=0.0, depth_sheds=3)      # relapse
        assert ladder.state == "shedding"

    def test_noisy_calm_resets_hold_counter(self):
        cfg = LadderConfig(hold=2)
        ladder, _, _ = make(cfg)
        ladder.evaluate(1.0, hot=0.6, depth_sheds=0)
        ladder.evaluate(2.0, hot=0.1, depth_sheds=0)      # -> recovering
        ladder.evaluate(3.0, hot=0.0, depth_sheds=0)      # calm 1
        ladder.evaluate(4.0, hot=0.1, depth_sheds=0)      # not calm: reset
        ladder.evaluate(5.0, hot=0.0, depth_sheds=0)      # calm 1 again
        assert ladder.state == "recovering"
        ladder.evaluate(6.0, hot=0.0, depth_sheds=0)      # calm 2
        assert ladder.state == "healthy"

    def test_transitions_recorded_with_reasons(self):
        ladder, _, _ = make()
        ladder.evaluate(1.5, hot=0.0, depth_sheds=4)
        (tr,) = ladder.transitions
        assert tr["t"] == 1.5
        assert tr["prev"] == "healthy"
        assert tr["state"] == "shedding"
        assert "4 depth shed" in tr["reason"]
        assert set(tr) == {"t", "prev", "state", "reason"}


class TestTimeInState:
    def test_sums_to_horizon(self):
        ladder, _, _ = make()
        ladder.evaluate(10.0, hot=0.6, depth_sheds=0)
        ladder.evaluate(20.0, hot=0.0, depth_sheds=0)
        tis = ladder.time_in_state(50.0)
        assert set(tis) == set(STATES)
        assert sum(tis.values()) == pytest.approx(50.0)
        assert tis["healthy"] == pytest.approx(10.0)
        assert tis["shedding"] == pytest.approx(10.0)
        assert tis["recovering"] == pytest.approx(30.0)

    def test_no_transitions_all_healthy(self):
        ladder, _, _ = make()
        assert ladder.time_in_state(7.0)["healthy"] == pytest.approx(7.0)


class TestTracing:
    def test_emits_schema_valid_service_state_events(self):
        from repro.observability.schema import validate_trace
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        queues = TaskQueues(4, cap=4)
        admission = AdmissionController(TokenBucket(10.0, 10.0), queues)
        ladder = DegradationLadder(
            LadderConfig(), admission=admission, engine=FakeEngine(),
            tracer=tracer,
        )
        ladder.evaluate(1.0, hot=0.6, depth_sheds=0)
        ladder.evaluate(2.0, hot=0.0, depth_sheds=0)
        counts = validate_trace(tracer.events)
        assert counts["service_state"] == 2
