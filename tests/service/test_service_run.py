"""End-to-end tests of the live service mode (``repro serve``).

The smoke-scenario assertions here are the acceptance contract of the
service mode: a seeded crash-burst run must produce a schema-valid
document whose degradation timeline enters ``shedding`` during the
burst and returns to ``healthy`` after it, deterministically.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.async_engine import ConstantRates
from repro.observability.monitors import MonitorSuite
from repro.observability.schema import validate_trace
from repro.observability.tracer import Tracer
from repro.params import LBParams
from repro.service import (
    ServiceConfig,
    ServiceEngine,
    service_run,
    validate_service,
)
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.queues import TaskQueues


@pytest.fixture(scope="module")
def smoke_run():
    """One smoke chaos run, shared by the read-only assertions."""
    return service_run(ServiceConfig.smoke(seed=0), chaos=True)


class TestSmokeScenario:
    def test_document_is_schema_valid(self, smoke_run):
        assert validate_service(smoke_run.doc) == []

    def test_timeline_enters_shedding_during_burst(self, smoke_run):
        cfg = ServiceConfig.smoke(seed=0)
        lo, hi = cfg.burst_at, cfg.burst_at + cfg.burst_duration
        assert any(
            tr["state"] == "shedding" and lo <= tr["t"] < hi
            for tr in smoke_run.timeline
        ), smoke_run.timeline

    def test_returns_to_healthy_after_burst(self, smoke_run):
        cfg = ServiceConfig.smoke(seed=0)
        assert smoke_run.doc["final_state"] == "healthy"
        back = [
            tr["t"] for tr in smoke_run.timeline if tr["state"] == "healthy"
        ]
        assert back and back[-1] > cfg.burst_at + cfg.burst_duration

    def test_slo_counters_are_consistent(self, smoke_run):
        slo = smoke_run.doc["slo"]
        assert slo["offered"] == slo["admitted"] + slo["shed"]
        assert slo["shed"] == sum(slo["shed_by_reason"].values())
        assert 0 < slo["completed"] <= slo["admitted"]
        assert 0.0 <= slo["time_in_band"] <= 1.0
        assert slo["sojourn_p99"] >= slo["sojourn_p50"] > 0

    def test_brownout_actually_shed_noncritical_work(self, smoke_run):
        # the burst drives the ladder into shedding, whose brown-out
        # must have refused at least some non-critical arrivals
        assert smoke_run.doc["slo"]["shed_by_reason"]["brownout"] > 0

    def test_chaos_stats_recorded(self, smoke_run):
        stats = smoke_run.doc["counters"]["fault_stats"]
        assert stats is not None and stats["crashes"] > 0

    def test_queues_mirror_loads_after_run(self, smoke_run):
        engine = smoke_run.engine
        assert (engine.queues.depths() == engine.l).all()
        assert engine.queues.total() == int(engine.l.sum())


class TestDeterminism:
    def test_golden_monitors_on_off(self):
        """Identical admission/shed/SLO counters with monitors on & off."""
        cfg = ServiceConfig.smoke(seed=0)
        off = service_run(cfg, chaos=True)
        on = service_run(
            cfg, chaos=True, monitors=MonitorSuite.standard(cfg.params())
        )
        assert on.doc["slo"] == off.doc["slo"]
        assert on.doc["timeline"] == off.doc["timeline"]
        assert on.doc["series"] == off.doc["series"]
        assert on.doc["counters"] == off.doc["counters"]
        assert np.array_equal(on.result.loads, off.result.loads)

    def test_same_seed_same_document(self):
        cfg = ServiceConfig.smoke(seed=3)
        a = service_run(cfg, chaos=True)
        b = service_run(cfg, chaos=True)
        assert a.doc == b.doc

    def test_different_seed_differs(self):
        a = service_run(ServiceConfig.smoke(seed=0), chaos=True)
        b = service_run(ServiceConfig.smoke(seed=1), chaos=True)
        assert a.doc["slo"] != b.doc["slo"]

    def test_replay_reproduces_the_run(self, smoke_run):
        cfg = ServiceConfig.smoke(seed=0)
        rep = service_run(cfg, chaos=True, replay=smoke_run.trace)
        assert rep.doc["slo"] == smoke_run.doc["slo"]
        assert rep.doc["timeline"] == smoke_run.doc["timeline"]

    def test_replay_wrong_n_rejected(self, smoke_run):
        cfg = replace(ServiceConfig.smoke(seed=0), n=8)
        with pytest.raises(ValueError, match="n="):
            service_run(cfg, chaos=True, replay=smoke_run.trace)

    def test_tracing_does_not_perturb_the_run(self, smoke_run):
        cfg = ServiceConfig.smoke(seed=0)
        tracer = Tracer()
        traced = service_run(cfg, chaos=True, tracer=tracer)
        assert traced.doc["slo"] == smoke_run.doc["slo"]
        counts = validate_trace(tracer.events)
        assert counts["service_state"] == len(smoke_run.timeline)
        assert counts["service_shed"] > 0
        assert counts["arrival"] if "arrival" in counts else True


class TestQuietService:
    def test_underloaded_run_stays_healthy(self):
        cfg = replace(
            ServiceConfig(seed=0), rate=1.0, horizon=30.0
        )
        run = service_run(cfg)
        assert run.doc["timeline"] == []
        assert run.doc["final_state"] == "healthy"
        assert run.doc["chaos"] is None
        assert run.doc["slo"]["shed"] == 0 or (
            run.doc["slo"]["shed_by_reason"]["bucket"]
            == run.doc["slo"]["shed"]
        )

    def test_traffic_profiles_all_run(self):
        for profile in ("poisson", "bursty", "diurnal"):
            cfg = replace(
                ServiceConfig(seed=0), traffic=profile, horizon=20.0, rate=2.0
            )
            assert validate_service(service_run(cfg).doc) == []


class TestServiceEngineGuards:
    def test_rejects_generating_rates(self):
        n = 4
        rates = ConstantRates(np.full(n, 0.3), np.full(n, 0.3))
        queues = TaskQueues(n, cap=4)
        admission = AdmissionController(TokenBucket(5.0, 5.0), queues)
        with pytest.raises(ValueError, match="consume-only"):
            ServiceEngine(
                LBParams(f=1.3, delta=2, C=4), rates,
                queues=queues, admission=admission,
            )


class TestValidator:
    def test_flags_missing_and_wrong_fields(self, smoke_run):
        import copy

        doc = copy.deepcopy(smoke_run.doc)
        doc["slo"].pop("time_in_band")
        doc["final_state"] = "on-fire"
        doc["series"]["rho"] = doc["series"]["rho"][:-1]
        problems = validate_service(doc)
        assert any("time_in_band" in p for p in problems)
        assert any("on-fire" in p for p in problems)
        assert any("unequal series" in p for p in problems)

    def test_flags_wrong_schema(self):
        assert any(
            "schema" in p for p in validate_service({"schema": "nope"})
        )
