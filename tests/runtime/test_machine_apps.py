"""Tests for the task machine and the real applications.

The headline property: the *result* of the distributed computation is
exact and independent of every balancing parameter, seed and processor
count — only the schedule changes.
"""

import pytest

from repro.apps import (
    KNOWN_COUNTS,
    NQueensApp,
    TSPApp,
    TSPInstance,
    brute_force_tsp,
)
from repro.params import LBParams
from repro.runtime import TaskMachine


class TestTaskMachine:
    def test_lockstep_through_full_run(self):
        app = NQueensApp(6)
        m = TaskMachine(
            4, LBParams(f=1.2, delta=1, C=4), app, seed=0, check_lockstep=True
        )
        res = m.run()
        assert m.finished
        assert res.loads[-1].sum() == 0

    def test_executed_equals_spawned_on_completion(self):
        app = NQueensApp(6)
        m = TaskMachine(4, LBParams(f=1.3, delta=2, C=4), app, seed=1)
        res = m.run()
        assert res.executed == res.spawned  # every task eventually runs

    def test_max_ticks_guard(self):
        app = NQueensApp(8)
        m = TaskMachine(4, LBParams(f=1.2, delta=1, C=4), app, seed=0)
        with pytest.raises(RuntimeError):
            m.run(max_ticks=5)

    def test_result_fields(self):
        app = NQueensApp(5)
        res = TaskMachine(4, LBParams(), app, seed=2).run()
        assert res.n == 4
        assert 0 < res.parallel_efficiency <= 1.0
        assert res.loads.shape == (res.ticks + 1, 4)


class TestNQueensDistributed:
    @pytest.mark.parametrize("n_queens", [4, 5, 6, 7, 8])
    def test_counts_exact(self, n_queens):
        app = NQueensApp(n_queens)
        TaskMachine(8, LBParams(f=1.2, delta=2, C=4), app, seed=0).run()
        assert app.solutions == KNOWN_COUNTS[n_queens]

    @pytest.mark.parametrize("n_procs", [2, 5, 16])
    @pytest.mark.parametrize("f,delta", [(1.1, 1), (1.8, 2)])
    def test_count_invariant_under_balancing(self, n_procs, f, delta):
        if delta >= n_procs:
            pytest.skip("delta must be < n")
        app = NQueensApp(6)
        TaskMachine(n_procs, LBParams(f=f, delta=delta, C=4), app, seed=7).run()
        assert app.solutions == KNOWN_COUNTS[6]

    def test_parallelism_reduces_makespan(self):
        def ticks(n_procs):
            app = NQueensApp(7)
            return TaskMachine(
                n_procs, LBParams(f=1.2, delta=1, C=4), app, seed=3
            ).run().ticks

        t_small, t_large = ticks(2), ticks(16)
        assert t_large < t_small / 2  # real speedup

    def test_validation(self):
        with pytest.raises(ValueError):
            NQueensApp(0)


class TestTSPDistributed:
    @pytest.mark.parametrize("n_cities,seed", [(6, 0), (7, 1), (8, 2)])
    def test_optimum_matches_brute_force(self, n_cities, seed):
        inst = TSPInstance.random(n_cities, seed=seed)
        ref, _ = brute_force_tsp(inst)
        app = TSPApp(inst)
        TaskMachine(8, LBParams(f=1.3, delta=2, C=4), app, seed=seed).run()
        assert app.best_length == pytest.approx(ref, abs=1e-9)

    def test_optimum_invariant_under_seeds(self):
        inst = TSPInstance.random(7, seed=5)
        lengths = set()
        for seed in (0, 1, 2):
            app = TSPApp(inst)
            TaskMachine(6, LBParams(f=1.2, delta=1, C=4), app, seed=seed).run()
            lengths.add(round(app.best_length, 12))
        assert len(lengths) == 1

    def test_pruning_happens(self):
        inst = TSPInstance.random(8, seed=3)
        app = TSPApp(inst)
        TaskMachine(8, LBParams(f=1.3, delta=2, C=4), app, seed=0).run()
        assert app.pruned > 0
        # far fewer expansions than the full (n-1)! tree
        assert app.expanded < 5040 * 8

    def test_best_tour_is_valid_permutation(self):
        inst = TSPInstance.random(7, seed=4)
        app = TSPApp(inst)
        TaskMachine(4, LBParams(f=1.2, delta=1, C=4), app, seed=0).run()
        assert app.best_tour is not None
        assert sorted(app.best_tour) == list(range(7))
        assert app.best_tour[0] == 0

    def test_lower_bound_admissible(self):
        """The bound never exceeds the true optimal completion."""
        inst = TSPInstance.random(6, seed=6)
        ref, _ = brute_force_tsp(inst)
        app = TSPApp(inst)
        from repro.apps.tsp import TSPTask

        root_bound = app._lower_bound(TSPTask(tour=(0,), length=0.0))
        assert root_bound <= ref + 1e-9

    def test_instance_validation(self):
        with pytest.raises(ValueError):
            TSPInstance.random(2)
        with pytest.raises(ValueError):
            brute_force_tsp(TSPInstance.random(11, seed=0))
