"""Crash recovery in the task runtime: lineage keeps results exact.

The pinned property is equality, not statistical closeness: with a
crash burst injected, the application's answer (N-queens solution
count, knapsack optimum) is *identical* to the fault-free run, because
every spawned task is re-executed from the lineage log exactly once.
"""

import numpy as np
import pytest

from repro.apps.knapsack import KnapsackApp, KnapsackInstance, dp_knapsack
from repro.apps.nqueens import KNOWN_COUNTS, NQueensApp
from repro.faults.plan import CrashWindow, FaultPlan
from repro.params import LBParams
from repro.runtime.machine import TaskMachine
from repro.runtime.practical import BalancerHooks, PracticalBalancer

PARAMS = LBParams(f=1.3, delta=2, C=4)

BURST = FaultPlan(
    crashes=(
        CrashWindow(proc=1, start=10.0, end=60.0),
        CrashWindow(proc=4, start=20.0, end=80.0),
    ),
    seed=5,
)


class TestBalancerCrashTransitions:
    def test_crash_zeroes_load_and_fires_hooks(self):
        events = []

        class Recorder(BalancerHooks):
            def on_crash(self, i):
                events.append(("crash", i))

            def on_recover(self, i):
                events.append(("recover", i))

        plan = FaultPlan(crashes=(CrashWindow(proc=2, start=2.0, end=5.0),))
        b = PracticalBalancer(6, PARAMS, rng=0, hooks=Recorder(), faults=plan)
        gen = np.ones(6, dtype=np.int64)
        for _ in range(8):
            b.step(gen)
        assert ("crash", 2) in events and ("recover", 2) in events
        assert b.crash_events == 1
        # ticks 2,3,4 crashed: processor 2 generated on the 5 alive ticks
        # only (modulo packets balanced its way after recovery)
        assert b.tick_count == 8

    def test_crashed_processor_takes_no_actions(self):
        plan = FaultPlan(crashes=(CrashWindow(proc=0, start=0.0, end=100.0),))
        b = PracticalBalancer(4, PARAMS, rng=0, faults=plan)
        for _ in range(20):
            b.step(np.ones(4, dtype=np.int64))
        assert b.l[0] == 0
        assert (b.l[1:] > 0).all()

    def test_all_partners_dark_drops_operation(self):
        # n=3, delta=2: the only possible partners are both crashed
        plan = FaultPlan(crashes=(
            CrashWindow(proc=1, start=0.0, end=100.0),
            CrashWindow(proc=2, start=0.0, end=100.0),
        ))
        b = PracticalBalancer(3, PARAMS, rng=0, faults=plan)
        for _ in range(50):
            b.step(np.array([1, 0, 0], dtype=np.int64))
        assert b.dropped_ops > 0
        assert b.total_ops == 0

    def test_no_faults_requires_no_extra_rng(self):
        """faults=None and an empty plan leave the tick stream unchanged."""
        a = PracticalBalancer(6, PARAMS, rng=0)
        b = PracticalBalancer(6, PARAMS, rng=0, faults=FaultPlan())
        rng = np.random.default_rng(1)
        for _ in range(60):
            acts = rng.integers(-1, 2, size=6)
            a.step(acts)
            b.step(acts)
        assert np.array_equal(a.l, b.l)
        assert a.total_ops == b.total_ops


class TestMachineLineageRecovery:
    def run_queens(self, faults, seed=3):
        app = NQueensApp(6)
        machine = TaskMachine(
            6, PARAMS, app, seed=seed, check_lockstep=True, faults=faults
        )
        result = machine.run(max_ticks=500_000)
        return app, result

    def test_nqueens_exact_under_crash_burst(self):
        app_ok, res_ok = self.run_queens(None)
        app_cr, res_cr = self.run_queens(BURST)
        assert app_ok.solutions == app_cr.solutions == KNOWN_COUNTS[6]
        # full enumeration: the tree size is schedule-independent, so
        # exactly-once re-execution means identical expansion counts
        assert app_ok.expanded == app_cr.expanded
        assert res_cr.executed == res_ok.executed
        assert res_cr.crashes == 2
        assert res_cr.tasks_recovered > 0
        assert res_ok.crashes == 0 and res_ok.tasks_recovered == 0

    def test_crash_replay_deterministic(self):
        _, a = self.run_queens(BURST)
        _, b = self.run_queens(BURST)
        assert a.ticks == b.ticks
        assert a.tasks_recovered == b.tasks_recovered
        assert np.array_equal(a.loads, b.loads)

    def test_knapsack_optimum_survives_crashes(self):
        inst = KnapsackInstance.random(14, seed=2)
        oracle = dp_knapsack(inst)
        for faults in (None, BURST):
            app = KnapsackApp(inst)
            TaskMachine(
                6, PARAMS, app, seed=1, check_lockstep=True, faults=faults
            ).run(max_ticks=500_000)
            assert app.best_value == oracle

    def test_lineage_log_drained(self):
        app = NQueensApp(5)
        m = TaskMachine(4, PARAMS, app, seed=0, faults=FaultPlan(
            crashes=(CrashWindow(proc=0, start=5.0, end=30.0),)
        ))
        m.run(max_ticks=500_000)
        assert m.lineage == {}  # every spawned task executed
        assert m.finished

    def test_unfinished_run_reports_stash(self):
        # everything crashes mid-run and never recovers: the resident
        # tree is stashed and the pool can never drain
        app = NQueensApp(6)
        m = TaskMachine(4, PARAMS, app, seed=0, faults=FaultPlan(
            crashes=tuple(
                CrashWindow(proc=p, start=10.0, end=1e6) for p in range(4)
            )
        ))
        with pytest.raises(RuntimeError, match="awaiting recovery"):
            m.run(max_ticks=2_000)
        assert sum(len(s) for s in m._stash) > 0
