"""Tests for the knapsack and SAT applications (exact-answer oracles)."""

import pytest

from repro.apps.knapsack import KnapsackApp, KnapsackInstance, dp_knapsack
from repro.apps.sat import CNF, SatApp, SatTask, brute_force_count
from repro.params import LBParams
from repro.runtime import TaskMachine


class TestKnapsackInstance:
    def test_random_shapes(self):
        inst = KnapsackInstance.random(10, seed=0)
        assert inst.n_items == 10
        assert 0 < inst.capacity <= sum(inst.weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            KnapsackInstance(weights=(1, 2), values=(1,), capacity=5)
        with pytest.raises(ValueError):
            KnapsackInstance(weights=(0,), values=(1,), capacity=5)
        with pytest.raises(ValueError):
            KnapsackInstance.random(0)

    def test_dp_oracle_simple(self):
        inst = KnapsackInstance(weights=(2, 3, 4), values=(3, 4, 5), capacity=5)
        assert dp_knapsack(inst) == 7  # items 0 + 1


class TestKnapsackDistributed:
    @pytest.mark.parametrize("n_items,seed", [(12, 0), (15, 1), (18, 2)])
    def test_matches_dp(self, n_items, seed):
        inst = KnapsackInstance.random(n_items, seed=seed)
        ref = dp_knapsack(inst)
        app = KnapsackApp(inst)
        TaskMachine(8, LBParams(f=1.3, delta=2, C=4), app, seed=seed).run()
        assert app.best_value == ref

    def test_invariant_under_machine_config(self):
        inst = KnapsackInstance.random(14, seed=3)
        ref = dp_knapsack(inst)
        for n_procs, f, delta in [(2, 1.1, 1), (8, 1.8, 2), (16, 1.2, 4)]:
            app = KnapsackApp(inst)
            TaskMachine(n_procs, LBParams(f=f, delta=delta, C=4), app, seed=0).run()
            assert app.best_value == ref

    def test_bound_prunes(self):
        inst = KnapsackInstance.random(16, seed=4)
        app = KnapsackApp(inst)
        TaskMachine(4, LBParams(f=1.2, delta=1, C=4), app, seed=0).run()
        assert app.pruned > 0
        assert app.expanded < 2 ** 16  # strictly better than enumeration

    def test_bound_admissible(self):
        inst = KnapsackInstance.random(12, seed=5)
        app = KnapsackApp(inst)
        from repro.apps.knapsack import KnapsackTask

        root = KnapsackTask(idx=0, weight=0, value=0)
        assert app._upper_bound(root) >= dp_knapsack(inst)


class TestCNF:
    def test_random_3sat_shape(self):
        cnf = CNF.random_3sat(8, 20, seed=0)
        assert cnf.n_vars == 8
        assert len(cnf.clauses) == 20
        for cl in cnf.clauses:
            assert len(cl) == 3
            assert len({abs(l) for l in cl}) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            CNF(n_vars=2, clauses=((3,),))
        with pytest.raises(ValueError):
            CNF(n_vars=2, clauses=((),))
        with pytest.raises(ValueError):
            CNF.random_3sat(2, 5)

    def test_brute_force_tautology(self):
        cnf = CNF(n_vars=3, clauses=((1, -1, 2),))
        assert brute_force_count(cnf) == 8

    def test_brute_force_unsat(self):
        cnf = CNF(n_vars=1, clauses=((1,), (-1,)))
        assert brute_force_count(cnf) == 0


class TestSatDistributed:
    @pytest.mark.parametrize(
        "n_vars,n_clauses,seed", [(8, 20, 0), (10, 30, 1), (10, 42, 2)]
    )
    def test_model_count_exact(self, n_vars, n_clauses, seed):
        cnf = CNF.random_3sat(n_vars, n_clauses, seed=seed)
        ref = brute_force_count(cnf)
        app = SatApp(cnf)
        TaskMachine(8, LBParams(f=1.2, delta=1, C=4), app, seed=seed).run()
        assert app.models == ref

    def test_unsat_counts_zero(self):
        cnf = CNF(n_vars=3, clauses=((1,), (-1,)))
        app = SatApp(cnf)
        TaskMachine(2, LBParams(f=1.2, delta=1, C=4), app, seed=0).run()
        assert app.models == 0
        assert app.conflicts > 0

    def test_unit_propagation_preserves_count(self):
        """Formula with forced chains: propagation must not drop or
        double models."""
        # x1 & (x1 -> x2) & (x2 -> x3): models = assignments with
        # x1=x2=x3=1, x4 free: 2 models over 4 vars
        cnf = CNF(
            n_vars=4,
            clauses=((1,), (-1, 2), (-2, 3)),
        )
        assert brute_force_count(cnf) == 2
        app = SatApp(cnf)
        TaskMachine(2, LBParams(f=1.2, delta=1, C=4), app, seed=0).run()
        assert app.models == 2

    def test_lit_state_helper(self):
        cnf = CNF(n_vars=2, clauses=((1, 2, -1),))
        app = SatApp(cnf)
        t = SatTask(assigned_mask=0b01, value_mask=0b01)  # x1 = True
        assert app._lit_state(t, 1) is True
        assert app._lit_state(t, -1) is False
        assert app._lit_state(t, 2) is None
