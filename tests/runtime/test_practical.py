"""Tests for the practical balancer and its hook protocol."""

import numpy as np
import pytest

from repro.params import LBParams
from repro.runtime.practical import BalancerHooks, PracticalBalancer, Transfer


class RecordingHooks(BalancerHooks):
    def __init__(self):
        self.log = []

    def on_generate(self, i):
        self.log.append(("gen", i))

    def on_consume(self, i):
        self.log.append(("con", i))

    def on_starved(self, i):
        self.log.append(("starve", i))

    def on_transfer(self, src, dst, amount):
        self.log.append(("move", src, dst, amount))


def make(n=6, f=1.3, delta=2, seed=0, hooks=None):
    return PracticalBalancer(
        n, LBParams(f=f, delta=delta, C=4), rng=seed, hooks=hooks
    )


class TestPracticalBalancer:
    def test_conservation(self):
        """sum(l) == generates - consumes, counted via hooks."""
        hooks = RecordingHooks()
        b = make(hooks=hooks)
        rng = np.random.default_rng(0)
        for _ in range(100):
            b.step(rng.integers(-1, 2, size=6))
        gen = sum(1 for ev in hooks.log if ev[0] == "gen")
        con = sum(1 for ev in hooks.log if ev[0] == "con")
        assert int(b.l.sum()) == gen - con
        assert (b.l >= 0).all()

    def test_loads_equal_events(self):
        """Hook events replay to exactly the balancer's load vector."""
        hooks = RecordingHooks()
        b = make(hooks=hooks)
        rng = np.random.default_rng(1)
        for _ in range(60):
            b.step(rng.integers(-1, 2, size=6))
        shadow = np.zeros(6, dtype=np.int64)
        for ev in hooks.log:
            if ev[0] == "gen":
                shadow[ev[1]] += 1
            elif ev[0] == "con":
                shadow[ev[1]] -= 1
            elif ev[0] == "move":
                _, src, dst, amount = ev
                shadow[src] -= amount
                shadow[dst] += amount
        assert np.array_equal(shadow, b.l)

    def test_events_never_underflow(self):
        """Replaying events in order keeps every shadow count >= 0 —
        the inline-ordering guarantee the task runtime relies on."""
        hooks = RecordingHooks()
        b = make(hooks=hooks, seed=7)
        rng = np.random.default_rng(7)
        shadow = np.zeros(6, dtype=np.int64)
        for _ in range(80):
            b.step(rng.integers(-1, 2, size=6))
        for ev in hooks.log:
            if ev[0] == "gen":
                shadow[ev[1]] += 1
            elif ev[0] == "con":
                shadow[ev[1]] -= 1
            elif ev[0] == "move":
                _, src, dst, amount = ev
                shadow[src] -= amount
                shadow[dst] += amount
            assert (shadow >= 0).all(), ev

    def test_starved_hook(self):
        hooks = RecordingHooks()
        b = make(hooks=hooks)
        b.step(np.array([-1, 0, 0, 0, 0, 0]))
        assert ("starve", 0) in hooks.log
        assert b.starved == 1

    def test_balances_growth(self):
        b = make(n=8, f=1.1, delta=7)
        a = np.zeros(8, dtype=np.int64)
        a[0] = 1
        for _ in range(60):
            b.step(a)
        assert b.l.max() - b.l.min() <= 2

    def test_transfers_accumulate_per_tick(self):
        b = make(n=4, f=1.1, delta=3)
        a = np.array([1, 1, 0, 0])
        b.step(a)
        for tr in b.last_transfers:
            assert isinstance(tr, Transfer)
            assert tr.amount > 0
            assert tr.src != tr.dst

    def test_invalid_action_shape(self):
        with pytest.raises(ValueError):
            make().step(np.zeros(3, dtype=np.int64))

    def test_invalid_action_value(self):
        with pytest.raises(ValueError):
            make().step(np.full(6, 3, dtype=np.int64))

    def test_simulation_protocol(self):
        """Drives through the standard Simulation glue."""
        from repro.simulation.driver import Simulation
        from repro.workload import UniformRandom
        import numpy as np

        b = make(n=8)
        sim = Simulation(
            b, UniformRandom(8, 0.7, 0.3), workload_rng=np.random.default_rng(0)
        )
        hist = sim.run(40)
        assert hist.shape == (41, 8)
