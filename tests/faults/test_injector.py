"""Tests for the runtime fault injector."""


from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import (
    NO_FAULTS,
    CrashWindow,
    FaultPlan,
    Partition,
    StragglerWindow,
)


def make_plan(**kw):
    defaults = dict(
        crashes=(
            CrashWindow(proc=1, start=2.0, end=5.0),
            CrashWindow(proc=1, start=8.0, end=9.0),
            CrashWindow(proc=3, start=0.0, end=1.0),
        ),
        stragglers=(
            StragglerWindow(proc=0, start=0.0, end=4.0, factor=2.0),
            StragglerWindow(proc=0, start=3.0, end=6.0, factor=3.0),
        ),
        partitions=(Partition(start=1.0, end=2.0, groups=((0, 1), (2, 3))),),
        message_loss=0.5,
        seed=7,
    )
    defaults.update(kw)
    return FaultPlan(**defaults)


class TestWindowQueries:
    def test_crashed_bisect_tables(self):
        inj = FaultInjector(make_plan())
        assert not inj.crashed(1, 1.9)
        assert inj.crashed(1, 2.0)
        assert inj.crashed(1, 4.9)
        assert not inj.crashed(1, 5.0)
        assert inj.crashed(1, 8.5)     # second window, same proc
        assert not inj.crashed(0, 2.0)  # never-crashing proc
        assert inj.crashed(3, 0.5)

    def test_latency_multiplier_stacks(self):
        inj = FaultInjector(make_plan())
        assert inj.latency_multiplier(0, 1.0) == 2.0
        assert inj.latency_multiplier(0, 3.5) == 6.0   # both windows cover
        assert inj.latency_multiplier(0, 5.0) == 3.0
        assert inj.latency_multiplier(0, 7.0) == 1.0
        assert inj.latency_multiplier(2, 3.5) == 1.0

    def test_reachability_during_partition(self):
        inj = FaultInjector(make_plan())
        assert inj.reachable(0, 1, 1.5)       # same group
        assert not inj.reachable(0, 2, 1.5)   # across the cut
        assert inj.reachable(0, 2, 2.5)       # partition healed
        # processors outside every group form the implicit rest group
        assert inj.reachable(4, 5, 1.5)
        assert not inj.reachable(0, 4, 1.5)

    def test_partner_declines_updates_counters(self):
        inj = FaultInjector(make_plan())
        assert inj.partner_declines(0, 1, 3.0)       # crashed
        assert inj.partner_declines(0, 2, 1.5)       # partitioned
        assert not inj.partner_declines(0, 2, 6.0)   # healthy
        assert inj.counters()["crashed_declines"] == 1
        assert inj.counters()["partition_declines"] == 1


class TestStochasticStream:
    def test_message_loss_deterministic_across_resets(self):
        inj = FaultInjector(make_plan())
        first = [inj.message_lost(float(t)) for t in range(50)]
        lost = inj.lost_messages
        assert 0 < lost < 50  # p=0.5: both outcomes occur
        inj.reset()
        assert inj.lost_messages == 0
        assert [inj.message_lost(float(t)) for t in range(50)] == first
        assert inj.lost_messages == lost

    def test_zero_loss_draws_nothing(self):
        inj = FaultInjector(make_plan(message_loss=0.0, seed=1))
        state_before = inj.rng.bit_generator.state
        assert not any(inj.message_lost(float(t)) for t in range(20))
        assert inj.rng.bit_generator.state == state_before

    def test_plan_seed_changes_stream(self):
        a = FaultInjector(make_plan(seed=1))
        b = FaultInjector(make_plan(seed=2))
        draws_a = [a.message_lost(0.0) for _ in range(64)]
        draws_b = [b.message_lost(0.0) for _ in range(64)]
        assert draws_a != draws_b


class TestBoundaryEvents:
    def test_sorted_and_complete(self):
        inj = FaultInjector(make_plan())
        events = inj.boundary_events()
        assert len(events) == 6  # crash+recover per window
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        assert events[0] == (0.0, "crash", 3)
        assert (5.0, "recover", 1) in events


class TestAsInjector:
    def test_coercions(self):
        assert as_injector(None) is None
        assert as_injector(NO_FAULTS) is None
        assert as_injector(FaultPlan()) is None
        plan = make_plan()
        inj = as_injector(plan)
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj) is inj
        assert as_injector(FaultInjector(FaultPlan())) is None
