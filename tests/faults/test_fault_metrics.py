"""Tests for the resilience metrics."""

import numpy as np
import pytest

from repro.faults.metrics import (
    RecoveryReport,
    extreme_ratio,
    max_mean_ratio,
    recovery_report,
    theorem4_band,
)
from repro.params import LBParams
from repro.theory.fixpoint import fix_limit


class TestStatistics:
    def test_band_formula(self):
        p = LBParams(f=1.3, delta=2, C=4)
        assert theorem4_band(p) == pytest.approx(1.3 * 1.3 * fix_limit(2, 1.3))

    def test_extreme_ratio(self):
        loads = np.array([[4, 2, 0], [6, 6, 6]])
        rho = extreme_ratio(loads, C=4)
        assert rho[0] == pytest.approx(4 / 4)
        assert rho[1] == pytest.approx(6 / 10)

    def test_extreme_ratio_validation(self):
        with pytest.raises(ValueError):
            extreme_ratio(np.zeros(3), C=4)
        with pytest.raises(ValueError):
            extreme_ratio(np.zeros((2, 3)), C=0)

    def test_max_mean_ratio_empty_system(self):
        loads = np.array([[0, 0], [3, 1]])
        mm = max_mean_ratio(loads)
        assert mm[0] == 1.0  # empty: defined as balanced
        assert mm[1] == pytest.approx(1.5)


class TestRecoveryReport:
    def make_series(self):
        # healthy (rho ~ 8/(8+4) inside any band) -> spike -> recovery
        times = np.arange(8, dtype=float)
        loads = np.array([
            [8, 8, 8],
            [8, 7, 8],
            [20, 1, 1],   # burst starts at t=2
            [22, 0, 1],
            [10, 4, 5],   # burst ends at t=4
            [9, 3, 4],    # still out of band
            [6, 5, 5],    # re-entered
            [5, 5, 5],
        ])
        return times, loads

    def test_spike_and_reentry(self):
        times, loads = self.make_series()
        p = LBParams(f=1.3, delta=2, C=4)
        rep = recovery_report(times, loads, p, burst_start=2.0, burst_end=4.0)
        assert isinstance(rep, RecoveryReport)
        assert rep.band == pytest.approx(theorem4_band(p))
        assert rep.spike_ratio == pytest.approx(22 / 4)
        assert rep.pre_fault_ratio == pytest.approx(
            np.mean([8 / 12, 8 / 11])
        )
        # rho at t=4: 10/8=1.25 -> inside band 1.988 immediately
        assert rep.reentry_time == 0.0
        assert rep.reentry_snapshots == 0
        assert rep.final_ratio == pytest.approx(5 / 9)

    def test_never_reenters(self):
        times = np.arange(3, dtype=float)
        loads = np.array([[1, 1], [50, 0], [50, 0]])
        p = LBParams(f=1.1, delta=1, C=4)
        rep = recovery_report(times, loads, p, burst_start=1.0, burst_end=1.5)
        assert rep.reentry_time is None
        assert rep.reentry_snapshots is None

    def test_as_dict_roundtrip(self):
        times, loads = self.make_series()
        p = LBParams(f=1.3, delta=2, C=4)
        rep = recovery_report(times, loads, p, burst_start=2.0, burst_end=4.0)
        d = rep.as_dict()
        assert d["band"] == rep.band
        assert set(d) == {
            "band", "pre_fault_ratio", "spike_ratio", "spike_max_mean",
            "reentry_time", "reentry_snapshots", "final_ratio",
        }

    def test_validation(self):
        p = LBParams(f=1.3, delta=2, C=4)
        with pytest.raises(ValueError):
            recovery_report(
                np.arange(3, dtype=float), np.zeros((2, 4)), p,
                burst_start=0.0, burst_end=1.0,
            )
        with pytest.raises(ValueError):
            recovery_report(
                np.arange(2, dtype=float), np.zeros((2, 4)), p,
                burst_start=2.0, burst_end=1.0,
            )
