"""Tests for the declarative fault plan."""

import json

import pytest

from repro.faults.plan import (
    NO_FAULTS,
    CrashWindow,
    FaultPlan,
    Partition,
    StragglerWindow,
)


class TestWindows:
    def test_crash_window_covers(self):
        w = CrashWindow(proc=1, start=2.0, end=5.0)
        assert not w.covers(1.9)
        assert w.covers(2.0)
        assert w.covers(4.999)
        assert not w.covers(5.0)  # half-open

    def test_crash_window_validation(self):
        with pytest.raises(ValueError):
            CrashWindow(proc=0, start=3.0, end=3.0)
        with pytest.raises(ValueError):
            CrashWindow(proc=0, start=-1.0, end=3.0)
        with pytest.raises(ValueError):
            CrashWindow(proc=-1, start=0.0, end=1.0)
        with pytest.raises(ValueError):
            CrashWindow(proc=0, start=0.0, end=float("inf"))

    def test_straggler_factor_validation(self):
        with pytest.raises(ValueError):
            StragglerWindow(proc=0, start=0.0, end=1.0, factor=0.5)
        w = StragglerWindow(proc=0, start=0.0, end=1.0, factor=3.0)
        assert w.factor == 3.0

    def test_partition_side(self):
        p = Partition(start=0.0, end=2.0, groups=((0, 1), (2, 3)))
        assert p.side(0) == p.side(1) == 0
        assert p.side(2) == 1
        assert p.side(7) == -1  # implicit third group

    def test_partition_groups_disjoint(self):
        with pytest.raises(ValueError):
            Partition(start=0.0, end=1.0, groups=((0, 1), (1, 2)))


class TestFaultPlan:
    def test_empty(self):
        assert NO_FAULTS.is_empty
        assert FaultPlan().is_empty
        assert not FaultPlan(message_loss=0.1).is_empty

    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(
                CrashWindow(proc=0, start=0.0, end=5.0),
                CrashWindow(proc=0, start=4.0, end=6.0),
            ))
        # different processors may overlap freely
        FaultPlan(crashes=(
            CrashWindow(proc=0, start=0.0, end=5.0),
            CrashWindow(proc=1, start=4.0, end=6.0),
        ))

    def test_message_loss_range(self):
        with pytest.raises(ValueError):
            FaultPlan(message_loss=1.0)
        with pytest.raises(ValueError):
            FaultPlan(message_loss=-0.1)

    def test_validate_for_network(self):
        plan = FaultPlan(crashes=(CrashWindow(proc=5, start=0.0, end=1.0),))
        plan.validate_for_network(8)
        with pytest.raises(ValueError):
            plan.validate_for_network(4)

    def test_max_time(self):
        plan = FaultPlan(
            crashes=(CrashWindow(proc=0, start=0.0, end=3.0),),
            stragglers=(StragglerWindow(proc=1, start=1.0, end=7.0, factor=2.0),),
        )
        assert plan.max_time == 7.0

    def test_crash_burst_deterministic(self):
        a = FaultPlan.crash_burst(32, 0.25, at=5.0, duration=2.0, seed=3)
        b = FaultPlan.crash_burst(32, 0.25, at=5.0, duration=2.0, seed=3)
        c = FaultPlan.crash_burst(32, 0.25, at=5.0, duration=2.0, seed=4)
        assert a == b
        assert a != c
        assert len(a.crashes) == 8
        assert all(w.start == 5.0 and w.end == 7.0 for w in a.crashes)

    def test_crash_burst_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.crash_burst(8, 1.5, at=0.0, duration=1.0)
        with pytest.raises(ValueError):
            FaultPlan.crash_burst(8, 0.5, at=0.0, duration=0.0)

    def test_roundtrip_dict_and_json(self, tmp_path):
        plan = FaultPlan(
            crashes=(CrashWindow(proc=2, start=1.0, end=4.0),),
            stragglers=(StragglerWindow(proc=0, start=0.0, end=9.0, factor=4.0),),
            partitions=(Partition(start=2.0, end=3.0, groups=((0, 1), (2,))),),
            message_loss=0.05,
            seed=9,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = tmp_path / "plan.json"
        plan.to_json(path)
        json.loads(path.read_text())  # valid JSON on disk
        assert FaultPlan.from_json(path) == plan

    def test_with_seed(self):
        plan = FaultPlan(message_loss=0.1, seed=1)
        assert plan.with_seed(2).seed == 2
        assert plan.with_seed(2).message_loss == 0.1
