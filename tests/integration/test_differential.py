"""Differential tests: independent implementations must agree.

The repo contains several independent realisations of overlapping
models (analysed engine / practical balancer / OPG simulator / moment
recursion / per-u DP / enumeration).  These tests pin them against each
other where their domains overlap — a disagreement localises a bug that
unit tests on either side might miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, EngineConfig, LBParams
from repro.core.opg import simulate_opg
from repro.params import LBParams as P
from repro.runtime.practical import PracticalBalancer
from repro.theory.fixpoint import iterate_G
from repro.theory.moments import exact_moments
from repro.theory.per_u import per_u_moments
from repro.theory.variation import exact_variation_density


class TestEngineVsPractical:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=20)
    def test_same_totals_any_seed(self, seed):
        """Both engines conserve packets identically for the same
        action stream (their internals differ completely)."""
        n = 6
        actions_rng = np.random.default_rng(seed)
        stream = [actions_rng.integers(-1, 2, size=n) for _ in range(40)]

        eng = Engine(EngineConfig(n=n, params=LBParams(f=1.3, delta=2, C=4)), rng=seed)
        prac = PracticalBalancer(n, LBParams(f=1.3, delta=2, C=4), rng=seed)
        for a in stream:
            eng.step(a.copy())
            prac.step(a.copy())
        # balancing choices differ (different RNG consumption), but
        # totals depend only on generate/consume feasibility
        assert eng.l.sum() >= 0 and prac.l.sum() >= 0
        eng.assert_invariants()

    def test_identical_when_no_consumption(self):
        """Pure growth: total load equals total generates in both."""
        n = 5
        rng = np.random.default_rng(3)
        stream = [(rng.random(n) < 0.6).astype(np.int64) for _ in range(50)]
        expected = int(sum(a.sum() for a in stream))

        eng = Engine(EngineConfig(n=n, params=LBParams(f=1.2, delta=1, C=4)), rng=0)
        prac = PracticalBalancer(n, LBParams(f=1.2, delta=1, C=4), rng=0)
        for a in stream:
            eng.step(a.copy())
            prac.step(a.copy())
        assert int(eng.l.sum()) == expected
        assert int(prac.l.sum()) == expected


class TestTheoryTriangle:
    """enumeration == moment recursion == per-u mixture == Lemma 1."""

    @given(
        n=st.integers(3, 7),
        f=st.floats(1.0, 2.5),
        t=st.integers(1, 6),
    )
    @settings(max_examples=25)
    def test_four_way_agreement(self, n, f, t):
        enum = exact_variation_density(t, n, f)
        mom = exact_moments(t, n, f)
        dec = per_u_moments(t, n, f)
        lemma1 = iterate_G(n, 1, f, t)

        # enumeration vs moments
        assert enum.e2_producer[-1] == pytest.approx(
            mom.e2_producer[-1], rel=1e-10
        )
        # moments vs per-u mixture
        e, a = dec.marginal_moments()
        assert e == pytest.approx(mom.e_producer[-1], rel=1e-10)
        assert a == pytest.approx(mom.e2_producer[-1], rel=1e-10)
        # mean ratio vs Lemma 1 operator
        assert mom.e_producer[-1] / mom.e_other[-1] == pytest.approx(
            lemma1[-1], rel=1e-10
        )


class TestOPGVsEngine:
    def test_one_producer_engine_equals_opg_statistics(self):
        """The full engine restricted to one producer reproduces the
        packet-exact OPG model's statistics (same ops/packets law)."""
        n, delta, f = 8, 1, 1.3
        opg = simulate_opg(n, delta, f, 60, seed=4)
        assert opg.packets_generated >= opg.ops

        eng = Engine(EngineConfig(n=n, params=P(f=f, delta=delta, C=4)), rng=4)
        a = np.zeros(n, dtype=np.int64)
        a[0] = 1
        for _ in range(opg.steps):
            eng.step(a)
        assert eng.total_generated == opg.steps
        assert int(eng.l.sum()) == eng.total_generated
        # same qualitative op frequency (both trigger on factor f of
        # the producer's own-class load, which here is the whole load)
        assert eng.total_ops >= opg.ops // 2
