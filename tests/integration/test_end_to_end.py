"""Integration tests: whole-system behaviour against the paper's claims.

These cross module boundaries on purpose: engine + workload + metrics +
theory together, at reduced (but not toy) scale.
"""

import numpy as np
import pytest

from repro import LBParams, run_simulation
from repro.baselines import NoBalance, RandomScatter, run_baseline
from repro.metrics.stats import imbalance_factor
from repro.theory.bounds import theorem4_bound
from repro.workload import (
    AdversarialFlipFlop,
    BurstyHotspot,
    OneProducer,
    ProducerConsumerSplit,
    Section7Workload,
    UniformRandom,
)
from repro.workload.trace import TraceRecorder


class TestBalanceQualityAcrossWorkloads:
    """Theorem 4's promise is workload-independent — check a spectrum."""

    @pytest.mark.parametrize(
        "workload_factory",
        [
            lambda n: UniformRandom(n, 0.7, 0.3),
            lambda n: OneProducer(n, 1.0, 0.02),
            lambda n: ProducerConsumerSplit(n, gen=0.9, consume=0.5),
            lambda n: BurstyHotspot(n, period=40, consume=0.02),
            lambda n: AdversarialFlipFlop(n, half_period=30),
        ],
        ids=["uniform", "one-producer", "split", "bursty", "flipflop"],
    )
    def test_imbalance_stays_bounded(self, workload_factory):
        n = 24
        params = LBParams(f=1.1, delta=2, C=4)
        res = run_simulation(
            n, params, workload_factory(n), steps=300, seed=7
        )
        # measure once the system carries noticeable load
        loaded = res.mean_load > 5
        if not loaded.any():
            pytest.skip("workload produced too little load to measure")
        bound = theorem4_bound(n, params.delta, params.f)
        for t in np.nonzero(loaded)[0]:
            imb = imbalance_factor(res.loads[t])
            # Theorem 4: E(l_i) <= bound * (E(l_j) + C); empirically per
            # run we allow the same additive slack plus stochastic noise
            mean = res.loads[t].mean()
            assert res.loads[t].max() <= bound * (mean + params.C) + 3

    def test_scalability_same_quality_at_sizes(self):
        """The factor between loads is independent of n (the paper's
        'independent of the network size')."""
        final_imbalances = []
        for n in (8, 32, 128):
            res = run_simulation(
                n,
                LBParams(f=1.2, delta=2, C=4),
                UniformRandom(n, 0.8, 0.2),
                steps=200,
                seed=11,
            )
            final_imbalances.append(imbalance_factor(res.loads[-1]))
        # quality does not degrade with size
        assert max(final_imbalances) < 1.5
        assert final_imbalances[2] < final_imbalances[0] * 1.3 + 0.2


class TestAgainstBaselines:
    def test_beats_no_balance_on_one_producer(self):
        n, steps = 16, 300
        rec = TraceRecorder(OneProducer(n, 1.0))
        lm = run_simulation(
            n, LBParams(f=1.2, delta=1, C=4), rec, steps=steps, seed=3
        )
        trace = rec.trace()
        nb = run_baseline(NoBalance(n, rng=0), trace, steps, seed=4)
        assert lm.loads[-1].sum() == nb.loads[-1].sum()  # same packets
        assert imbalance_factor(lm.loads[-1]) < 2
        assert imbalance_factor(nb.loads[-1]) > 5  # all on proc 0

    def test_lower_variance_than_random_scatter(self):
        """Section 5's motivation quantified: same expected balance,
        vastly lower per-run dispersion."""
        n, steps, runs = 12, 120, 15
        lm_cv, rs_cv = [], []
        for seed in range(runs):
            w1 = UniformRandom(n, 0.8, 0.0)
            lm = run_simulation(
                n, LBParams(f=1.1, delta=1, C=4), w1, steps=steps, seed=seed
            )
            lm_cv.append(lm.loads[-1].std() / lm.loads[-1].mean())
            w2 = UniformRandom(n, 0.8, 0.0)
            rs = run_baseline(RandomScatter(n, rng=seed), w2, steps, seed=seed)
            rs_cv.append(rs.loads[-1].std() / rs.loads[-1].mean())
        assert np.mean(lm_cv) < 0.2
        assert np.mean(rs_cv) > 0.6


class TestSection7EndToEnd:
    def test_full_scale_run_matches_paper_shape(self):
        """One full 64x500 run: trigger/f/delta shape assertions."""
        res_11 = run_simulation(
            64, LBParams(f=1.1, delta=1, C=4),
            Section7Workload(64, 500, layout_rng=0), steps=500, seed=0,
        )
        res_18 = run_simulation(
            64, LBParams(f=1.8, delta=1, C=4, require_provable=True),
            Section7Workload(64, 500, layout_rng=0), steps=500, seed=0,
        )
        res_d4 = run_simulation(
            64, LBParams(f=1.1, delta=4, C=4),
            Section7Workload(64, 500, layout_rng=0), steps=500, seed=0,
        )
        # lower f and higher delta give tighter balance (figures 7-10)
        assert res_d4.final_spread() <= res_11.final_spread()
        assert res_11.final_spread() <= res_18.final_spread() + 2
        # smaller f means more balancing activity (the cost trade-off)
        assert res_11.total_ops > res_18.total_ops

    def test_table1_shape_small(self):
        """Borrow statistics: remote borrows collapse as C grows."""
        from repro.experiments.config import QualityConfig
        from repro.experiments.runner import quality_experiment

        def remote(C):
            cfg = QualityConfig(n=32, steps=250, f=1.1, delta=1, C=C,
                                runs=3, seed=5, snapshot_ticks=())
            res = quality_experiment(cfg)
            return np.mean([c.remote_borrow for c in res.counters])

        assert remote(4) > remote(32)
