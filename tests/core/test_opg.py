"""Tests for the packet-exact one-processor-generator model."""

import numpy as np
import pytest

from repro.core.opg import opg_expected_ratio, opg_meanfield_ratio, simulate_opg
from repro.theory.fixpoint import fix, fix_limit, iterate_G


class TestSimulateOPG:
    def test_total_load_equals_generated(self):
        res = simulate_opg(8, 1, 1.2, 30, seed=0, initial_load=0)
        assert res.loads_at_ops[-1].sum() == res.packets_generated

    def test_initial_load_counted(self):
        res = simulate_opg(8, 1, 1.2, 10, seed=0, initial_load=5)
        assert res.loads_at_ops[-1].sum() == 40 + res.packets_generated

    def test_history_shape(self):
        res = simulate_opg(8, 2, 1.3, 15, seed=1)
        assert res.loads_at_ops.shape == (16, 8)
        assert res.ops == 15

    def test_loads_nonnegative_and_monotone_total(self):
        res = simulate_opg(8, 1, 1.1, 40, seed=2)
        assert (res.loads_at_ops >= 0).all()
        totals = res.loads_at_ops.sum(axis=1)
        assert (np.diff(totals) >= 0).all()

    def test_balance_op_equalises_group(self):
        """After the final op with delta = n-1 all loads differ <= 1."""
        res = simulate_opg(6, 5, 1.5, 20, seed=3)
        final = res.loads_at_ops[-1]
        assert final.max() - final.min() <= 1

    def test_gen_prob_slows_generation(self):
        fast = simulate_opg(8, 1, 1.2, 20, seed=4, gen_prob=1.0)
        slow = simulate_opg(8, 1, 1.2, 20, seed=4, gen_prob=0.25)
        assert slow.steps > fast.steps

    def test_lemma4_generated_at_least_ops(self):
        """Lemma-4 shape: after m balancing ops, >= m packets were
        generated (each op needs at least one new packet to re-trigger)."""
        for f in (1.1, 1.5, 2.4):
            res = simulate_opg(16, 4, f, 100, seed=5)
            assert res.packets_generated >= res.ops

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            simulate_opg(1, 1, 1.1, 5)
        with pytest.raises(ValueError):
            simulate_opg(8, 8, 1.1, 5)
        with pytest.raises(ValueError):
            simulate_opg(8, 1, 0.9, 5)
        with pytest.raises(ValueError):
            simulate_opg(8, 1, 1.1, 5, gen_prob=0.0)

    def test_max_steps_guard(self):
        with pytest.raises(RuntimeError):
            simulate_opg(8, 1, 1.1, 1000, max_steps=10)


class TestExpectedRatio:
    def test_ratio_positive_and_finite_after_growth(self):
        ratio = opg_expected_ratio(8, 1, 1.2, 30, runs=30, seed=0, initial_load=10)
        assert np.isfinite(ratio[1:]).all()
        assert (ratio[1:] > 0).all()

    def test_packet_model_approaches_fix_with_large_loads(self):
        """Starting from a large balanced load, integer effects are
        negligible and the ratio tracks the operator prediction."""
        n, d, f, t = 16, 1, 1.5, 10
        ratio = opg_expected_ratio(n, d, f, t, runs=120, seed=1, initial_load=500)
        theory = iterate_G(n, d, f, t)
        assert ratio[-1] == pytest.approx(theory[-1], rel=0.05)


class TestMeanFieldRatio:
    def test_matches_operator_iteration(self):
        n, d, f, t = 32, 1, 1.4, 30
        sim = opg_meanfield_ratio(n, d, f, t, trials=40_000, seed=0)
        theory = np.asarray(iterate_G(n, d, f, t))
        assert np.allclose(sim, theory, rtol=0.01)

    def test_bounded_by_fix_and_limit(self):
        """Theorem 1 + 2 numerically: ratio <= FIX <= limit."""
        n, d, f = 64, 2, 2.0
        sim = opg_meanfield_ratio(n, d, f, 80, trials=30_000, seed=1)
        assert sim.max() <= fix(n, d, f) * 1.01
        assert fix(n, d, f) <= fix_limit(d, f)
