"""ClassLedger: the compact active-class form of the d/b matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.balance import snake_distribute
from repro.core.ledger import ClassLedger


def random_dense(n: int, rng: np.random.Generator) -> np.ndarray:
    m = rng.integers(0, 4, size=(n, n))
    m[rng.random((n, n)) < 0.6] = 0  # keep it sparse-ish
    return m.astype(np.int64)


class TestRoundTrip:
    def test_from_dense_dense_round_trip(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 17):
            m = random_dense(n, rng)
            led = ClassLedger.from_dense(m)
            led.check_consistency()
            assert np.array_equal(led.dense(), m)
            assert led.total() == int(m.sum())
            assert np.array_equal(led.row_sums, m.sum(axis=1))
            assert np.array_equal(led.diag, np.diagonal(m))

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            ClassLedger.from_dense(np.zeros((2, 3), dtype=np.int64))

    def test_needs_positive_n(self):
        with pytest.raises(ValueError, match="n >= 1"):
            ClassLedger(0)


class TestAccessors:
    def test_get_add_set_with_pruning(self):
        led = ClassLedger(4)
        led.add(0, 2, 3)
        assert led.get(0, 2) == 3
        assert led.row_sum(0) == 3
        led.add(0, 2, -3)  # back to zero: entry must be pruned
        assert led.get(0, 2) == 0
        assert 2 not in led.rows[0]
        led.set(1, 1, 7)  # diagonal path
        assert led.get(1, 1) == 7
        assert led.rows[1] == {}
        led.check_consistency()

    def test_positive_classes_matches_dense_nonzero_order(self):
        rng = np.random.default_rng(1)
        for n in (2, 6, 13):
            m = random_dense(n, rng)
            led = ClassLedger.from_dense(m)
            for i in range(n):
                expect = np.nonzero(m[i] > 0)[0].tolist()
                assert led.positive_classes(i) == expect

    def test_min_value_and_active_entries(self):
        led = ClassLedger.from_dense(
            np.array([[2, 0, 1], [0, 0, 0], [0, 5, 3]], dtype=np.int64)
        )
        assert led.min_value() == 0  # empty diagonal entry
        assert led.active_entries() == 4  # 2 diag + 2 off-diag
        led.add(0, 1, -2)
        assert led.min_value() == -2


class TestSnakeRedeal:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_dense_snake_distribute(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 12))
        m = random_dense(n, rng)
        k = int(rng.integers(2, n + 1))
        parts = rng.permutation(n)[:k].tolist()
        start = int(rng.integers(k))

        led = ClassLedger.from_dense(m)
        sums = led.snake_redeal(parts, start)
        led.check_consistency()

        expect = m.copy()
        dealt = snake_distribute(m[parts].sum(axis=0), k, start=start)
        expect[parts] = dealt
        assert np.array_equal(led.dense(), expect)
        assert sums == dealt.sum(axis=1).tolist()

    def test_empty_rows_early_out(self):
        led = ClassLedger(5)
        led.add(4, 0, 9)  # an untouched row keeps its content
        assert led.snake_redeal([0, 1, 2], start=1) == [0, 0, 0]
        assert led.get(4, 0) == 9
        led.check_consistency()


class TestNdarrayShims:
    def test_getitem_row_scalar_slice(self):
        m = np.array([[1, 2], [0, 4]], dtype=np.int64)
        led = ClassLedger.from_dense(m)
        assert np.array_equal(led[0], m[0])
        assert led[1, 1] == 4
        assert np.array_equal(led[0, :], m[0])

    def test_setitem_scalar_row_and_slice(self):
        led = ClassLedger(3)
        led[0, 2] = 5
        assert led.get(0, 2) == 5
        led[1] = np.array([1, 2, 3])
        assert led.row_sum(1) == 6
        led[1, :] = 0
        assert led.row_sum(1) == 0
        assert led.rows[1] == {}
        led.check_consistency()

    def test_sum_array_and_array_equal(self):
        m = np.array([[1, 2], [3, 4]], dtype=np.int64)
        led = ClassLedger.from_dense(m)
        assert led.sum() == 10
        assert np.array_equal(led.sum(axis=1), [3, 7])
        with pytest.raises(ValueError, match="axis"):
            led.sum(axis=0)
        assert np.array_equal(np.asarray(led), m)
        assert np.array_equal(led, m)
        assert led.shape == (2, 2)
        assert "ClassLedger" in repr(led)


class TestConsistency:
    def test_detects_stale_row_sum(self):
        led = ClassLedger(2)
        led.add(0, 1, 2)
        led.row_sums[0] = 99  # corrupt the cache behind the API's back
        with pytest.raises(AssertionError, match="stale"):
            led.check_consistency()

    def test_detects_unpruned_zero(self):
        led = ClassLedger(2)
        led.rows[0][1] = 0
        with pytest.raises(AssertionError, match="unpruned"):
            led.check_consistency()

    def test_detects_diagonal_in_row(self):
        led = ClassLedger(2)
        led.rows[1][1] = 3
        led.row_sums[1] = 3
        with pytest.raises(AssertionError, match="diagonal"):
            led.check_consistency()
