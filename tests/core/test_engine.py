"""Tests for the full n-processor engine (section 4 + appendix)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine, EngineConfig
from repro.params import LBParams


def make_engine(
    n=6, f=1.5, delta=1, C=4, seed=0, check=True, **kw
) -> Engine:
    return Engine(
        EngineConfig(
            n=n,
            params=LBParams(f=f, delta=delta, C=C),
            check_invariants=check,
            **kw,
        ),
        rng=seed,
    )


def gen_only(n, i=0):
    a = np.zeros(n, dtype=np.int64)
    a[i] = 1
    return a


def con_only(n, i=0):
    a = np.zeros(n, dtype=np.int64)
    a[i] = -1
    return a


class TestBasicActions:
    def test_generate_books_own_class(self):
        e = make_engine()
        e.step(gen_only(6))
        assert e.l.sum() == 1
        assert e.d.sum() == 1
        assert e.total_generated == 1

    def test_consume_decrements_total(self):
        e = make_engine(f=3.0, delta=3)  # wide trigger band
        for _ in range(10):
            e.step(gen_only(6))
        before = int(e.l.sum())
        loaded = int((e.l > 0).sum())
        e.step(np.full(6, -1, dtype=np.int64))  # everyone consumes
        assert e.l.sum() == before - loaded
        assert e.counters.starved == 6 - loaded

    def test_consume_on_empty_is_starved(self):
        e = make_engine()
        e.step(con_only(6))
        assert e.counters.starved == 1
        assert (e.l == 0).all()

    def test_idle_changes_nothing(self):
        e = make_engine()
        e.step(np.zeros(6, dtype=np.int64))
        assert e.l.sum() == 0
        assert e.total_ops == 0

    def test_bad_action_shape(self):
        e = make_engine()
        with pytest.raises(ValueError):
            e.step(np.zeros(5, dtype=np.int64))

    def test_bad_action_value(self):
        e = make_engine()
        with pytest.raises(ValueError):
            e.step(np.full(6, 2, dtype=np.int64))

    def test_real_load_conservation(self):
        e = make_engine(seed=3)
        rng = np.random.default_rng(0)
        for _ in range(60):
            e.step(rng.integers(-1, 2, size=6))
        assert e.l.sum() == e.total_generated - e.total_consumed
        e.assert_invariants()


class TestBalancing:
    def test_first_packet_triggers_balance(self):
        e = make_engine(n=4, f=1.1, delta=1)
        e.step(gen_only(4))
        assert e.total_ops >= 1

    def test_balance_equalises_real_loads(self):
        e = make_engine(n=4, f=1.1, delta=3, seed=1)
        for _ in range(40):
            e.step(gen_only(4))
        # delta = n-1: every op balances the whole machine
        assert e.l.max() - e.l.min() <= 1

    def test_l_old_refreshed_for_participants(self):
        e = make_engine(n=4, f=1.5, delta=3, refresh_participants=True)
        for _ in range(10):
            e.step(gen_only(4))
        # after ops, every participant's l_old equals its own-class load
        assert (e.l_old == np.diagonal(e.d)).all()

    def test_refresh_only_initiator_mode(self):
        e = make_engine(n=4, f=1.5, delta=1, refresh_participants=False)
        for _ in range(20):
            e.step(gen_only(4))
        e.assert_invariants()  # conservation still holds

    def test_local_time_counts_ops(self):
        e = make_engine(n=4, f=1.5, delta=3)
        for _ in range(20):
            e.step(gen_only(4))
        # all processors participate in every op (delta = n-1)
        assert (e.local_time == e.total_ops).all()

    def test_ops_bound_by_trigger_factor(self):
        """With f = 2 the producer must double its own-class load
        between ops: ops grow logarithmically, not linearly."""
        e = make_engine(n=8, f=2.0, delta=2, seed=2)
        for _ in range(200):
            e.step(gen_only(8))
        assert e.total_ops < 60

    def test_migrations_counted(self):
        e = make_engine(n=4, f=1.1, delta=3)
        for _ in range(10):
            e.step(gen_only(4))
        assert e.packets_migrated > 0


class TestBorrowing:
    def _drain_setup(self, C=2):
        """Processor 1 ends up holding only foreign packets."""
        e = make_engine(n=4, f=1.5, delta=3, C=C, seed=5)
        for _ in range(30):
            e.step(gen_only(4, i=0))  # proc 0 generates, balancing spreads
        return e

    def test_borrow_on_foreign_consume(self):
        e = self._drain_setup()
        # processor 1 has load but no self-generated packets
        assert e.d[1, 1] == 0 and e.l[1] > 0
        e.step(con_only(4, i=1))
        assert e.counters.total_borrow == 1
        assert e.b[1].sum() == 1

    def test_borrow_capacity_respected_between_reductions(self):
        e = self._drain_setup(C=2)
        for _ in range(12):
            e.step(con_only(4, i=1))
            assert e.b[1].sum() <= 2  # never exceeds C
        assert e.counters.total_borrow > 2  # reductions made room

    def test_generation_repays_debt(self):
        e = self._drain_setup()
        e.step(con_only(4, i=1))
        assert e.b[1].sum() == 1
        e.step(gen_only(4, i=1))
        assert e.counters.repayments == 1
        assert e.b[1].sum() == 0

    def test_debt_reduction_paths_counted(self):
        """Exhausting capacity triggers remote exchange or the dance."""
        e = self._drain_setup(C=1)
        for _ in range(10):
            e.step(con_only(4, i=1))
        c = e.counters
        assert c.remote_borrow + c.borrow_fail >= 1
        assert c.decrease_sim >= c.remote_borrow  # each exchange books one

    def test_debt_ledger_closes(self):
        e = self._drain_setup(C=2)
        rng = np.random.default_rng(1)
        for _ in range(80):
            e.step(rng.integers(-1, 2, size=4))
        e.assert_invariants()  # includes the debt-ledger law


class TestInvariantMode:
    def test_catches_corruption(self):
        e = make_engine()
        e.step(gen_only(6))
        e.d[0, 0] += 5  # corrupt
        with pytest.raises(AssertionError):
            e.assert_invariants()

    def test_negative_debt_detected(self):
        e = make_engine()
        e.b[2, 3] = -1
        with pytest.raises(AssertionError):
            e.assert_invariants()


class TestPropertyRandomWalk:
    @given(
        n=st.integers(2, 10),
        delta=st.integers(1, 4),
        f=st.floats(1.0, 3.0),
        C=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40)
    def test_invariants_hold_under_any_workload(self, n, delta, f, C, seed):
        """The master property: for any parameters in (and slightly out
        of) the provable domain and any random action sequence, all
        conservation laws hold at every tick."""
        if delta >= n:
            return
        params = LBParams(f=f, delta=delta, C=C, require_provable=False)
        e = Engine(
            EngineConfig(n=n, params=params, check_invariants=True),
            rng=seed,
        )
        rng = np.random.default_rng(seed + 1)
        for _ in range(50):
            e.step(rng.integers(-1, 2, size=n))  # asserts internally
        assert e.l.sum() == e.total_generated - e.total_consumed

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25)
    def test_steady_state_balanced(self, seed):
        """After sustained uniform activity, loads are tightly grouped
        (the Theorem-4 promise, empirically)."""
        e = make_engine(n=8, f=1.1, delta=2, seed=seed, check=False)
        rng = np.random.default_rng(seed)
        for t in range(300):
            gen = (rng.random(8) < 0.7).astype(np.int64)
            e.step(gen)  # pure growth keeps loads positive
        mean = e.l.mean()
        assert e.l.max() <= 1.35 * mean + 5
        assert e.l.min() >= 0.65 * mean - 5
