"""Columnar engine equivalence: the pass pipeline must be invisible.

:class:`~repro.core.columnar.ColumnarEngine` re-expresses the tick as
a fused array-pass pipeline but must replay *exactly* the scalar
reference sweep (``Engine(fast_path=False)``): same RNG draw order,
same state, same trace events, spans and monitor verdicts.  Three
layers of evidence:

* the seeded equivalence grid of ``test_fast_path_equivalence``, run
  fused, unfused (``fuse=False``) and kernel-less (``kernel="off"``);
* a per-tick lockstep hypothesis property on the bench workloads
  (quiet / stationary / growth, n <= 64) comparing full state and the
  RNG state after *every* tick — a divergence is caught on the tick it
  happens, not ticks later;
* a golden-trace run through :func:`~repro.simulation.driver.
  run_simulation` with tracer + monitors + spans + metrics all on.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarEngine
from repro.core.engine import Engine, EngineConfig
from repro.experiments.microbench import _make_actions, _prepare_engine
from repro.observability import (
    MetricsRegistry,
    MonitorSuite,
    SpanRecorder,
    Tracer,
)
from repro.params import LBParams


def _run(n, params, actions, seed, **kwargs):
    tracer = Tracer()
    if kwargs.pop("scalar", False):
        eng = Engine(
            EngineConfig(n=n, params=params, fast_path=False),
            rng=seed,
            tracer=tracer,
        )
    else:
        eng = ColumnarEngine(
            EngineConfig(n=n, params=params),
            rng=seed,
            tracer=tracer,
            **kwargs,
        )
    for row in actions:
        eng.step(np.asarray(row, dtype=np.int64))
    eng.assert_invariants()
    return eng, tracer


def _assert_equivalent(n, params, actions, seed, **kwargs):
    col, col_tr = _run(n, params, actions, seed, **kwargs)
    ref, ref_tr = _run(n, params, actions, seed, scalar=True)
    assert col.l.tolist() == ref.l.tolist()
    assert col.l_old.tolist() == ref.l_old.tolist()
    assert np.array_equal(col.d.dense(), ref.d.dense())
    assert np.array_equal(col.b.dense(), ref.b.dense())
    assert col.counters.as_dict() == ref.counters.as_dict()
    assert col.total_ops == ref.total_ops
    assert col.packets_migrated == ref.packets_migrated
    assert col.total_generated == ref.total_generated
    assert col.total_consumed == ref.total_consumed
    assert col.rng.bit_generator.state == ref.rng.bit_generator.state
    assert col_tr.events == ref_tr.events


GRID = [
    # (n, f, delta, C, gen_bias, ticks, seed)
    (2, 1.5, 1, 2, 0.5, 80, 0),
    (3, 1.1, 1, 1, 0.6, 60, 1),
    (5, 1.3, 2, 4, 0.45, 60, 2),
    (8, 1.2, 3, 2, 0.55, 50, 3),
    (16, 1.1, 2, 4, 0.5, 40, 4),
    (16, 2.5, 4, 1, 0.7, 40, 5),
    (32, 1.3, 2, 4, 0.45, 30, 6),
    (32, 1.8, 5, 3, 0.65, 30, 7),
]


def _grid_actions(n, bias, ticks, seed):
    wr = np.random.default_rng(1000 + seed)
    u = wr.random((ticks, n))
    actions = np.zeros((ticks, n), dtype=np.int64)
    actions[u < bias * 0.9] = 1
    actions[u > 1 - (1 - bias) * 0.9] = -1  # ~10% idle
    return actions


@pytest.mark.parametrize(
    "variant", [{}, {"fuse": False}, {"kernel": "off"}],
    ids=["fused", "unfused", "no-kernel"],
)
@pytest.mark.parametrize("n,f,delta,C,bias,ticks,seed", GRID)
def test_equivalence_seeded_sweep(n, f, delta, C, bias, ticks, seed, variant):
    actions = _grid_actions(n, bias, ticks, seed)
    _assert_equivalent(
        n, LBParams(f=f, delta=delta, C=C), actions, seed, **variant
    )


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    profile=st.sampled_from(["quiet", "stationary", "growth"]),
    seed=st.integers(min_value=0, max_value=2**16),
    workload_seed=st.integers(min_value=0, max_value=2**16),
    ticks=st.integers(min_value=1, max_value=40),
)
def test_lockstep_property_on_bench_profiles(
    n, profile, seed, workload_seed, ticks
):
    """Full state + RNG equality after EVERY tick on the bench workloads."""
    params = LBParams(f=1.3, delta=min(2, n - 1), C=4)
    acts = _make_actions(profile, n, ticks, workload_seed)
    col = ColumnarEngine(EngineConfig(n=n, params=params), rng=seed)
    ref = Engine(
        EngineConfig(n=n, params=params, fast_path=False), rng=seed
    )
    _prepare_engine(col, profile, n)
    _prepare_engine(ref, profile, n)
    for t in range(ticks):
        a = np.asarray(acts[t], dtype=np.int64)
        col.step(a)
        ref.step(a)
        assert col.l.tolist() == ref.l.tolist(), f"l diverged at tick {t}"
        assert col.l_old.tolist() == ref.l_old.tolist()
        assert np.array_equal(col.d.dense(), ref.d.dense())
        assert np.array_equal(col.b.dense(), ref.b.dense())
        assert col.counters.as_tuple() == ref.counters.as_tuple()
        assert col.rng.bit_generator.state == ref.rng.bit_generator.state
    # no assert_invariants here: _prepare_engine pokes load state
    # directly, so the generated-consumed conservation law cannot hold;
    # the scalar reference engine is the oracle


class _ScalarOracle(Engine):
    """The reference engine forced onto the scalar sweep."""

    def __init__(self, config, **kwargs):
        super().__init__(
            dataclasses.replace(config, fast_path=False), **kwargs
        )


def _observed_simulation(engine_cls):
    from repro.simulation.driver import run_simulation
    from repro.workload import Section7Workload

    params = LBParams(f=1.3, delta=2, C=4)
    tracer = Tracer()
    suite = MonitorSuite.standard(params, tracer=tracer)
    metrics = MetricsRegistry()
    res = run_simulation(
        24,
        params,
        Section7Workload(24, 120, layout_rng=5),
        120,
        seed=5,
        check_invariants=True,
        tracer=tracer,
        metrics=metrics,
        monitors=suite,
        spans=SpanRecorder(tracer),
        engine_cls=engine_cls,
    )
    return res, tracer, suite, metrics


def test_golden_trace_with_monitors_on():
    """Monitors-on §7 run: events, verdicts, metrics all bit-identical."""
    col_res, col_tr, col_suite, col_m = _observed_simulation(ColumnarEngine)
    ref_res, ref_tr, ref_suite, ref_m = _observed_simulation(_ScalarOracle)
    assert np.array_equal(col_res.loads, ref_res.loads)
    assert col_res.total_ops == ref_res.total_ops
    assert col_res.packets_migrated == ref_res.packets_migrated
    assert col_res.counters.as_dict() == ref_res.counters.as_dict()
    assert col_tr.events == ref_tr.events  # includes span + monitor events
    assert col_suite.verdicts() == ref_suite.verdicts()
    assert col_m.as_dict() == ref_m.as_dict()


class TestDeepQuietLane:
    def _quiet_engine(self, n=256, **kwargs):
        eng = ColumnarEngine(
            EngineConfig(n=n, params=LBParams(f=1.3, delta=2, C=4)),
            rng=3,
            **kwargs,
        )
        _prepare_engine(eng, "quiet", n)
        return eng

    def test_fusion_compiles_and_engages(self):
        eng = self._quiet_engine()
        assert eng.pipeline.describe() == "classify -> advance+apply -> residual"
        eng.step(np.full(eng.n, -1, dtype=np.int64))
        # the first quiet tick proves a multi-tick horizon
        assert eng._deep_left > 0

    def test_unfused_pipeline_never_goes_deep(self):
        eng = self._quiet_engine(fuse=False)
        assert (
            eng.pipeline.describe()
            == "classify -> advance -> apply -> residual"
        )
        eng.step(np.full(eng.n, -1, dtype=np.int64))
        assert eng._deep_left == 0

    def test_invalid_action_in_deep_lane_mutates_nothing(self):
        eng = self._quiet_engine()
        eng.step(np.full(eng.n, -1, dtype=np.int64))
        assert eng._deep_left > 0
        l_before = eng.l.copy()
        rng_before = eng.rng.bit_generator.state
        bad = np.ones(eng.n, dtype=np.int64)
        bad[17] = 2
        with pytest.raises(ValueError, match="invalid action 2 for processor 17"):
            eng.step(bad)
        assert eng.l.tolist() == l_before.tolist()
        assert eng.rng.bit_generator.state == rng_before

    def test_invalidate_horizon(self):
        eng = self._quiet_engine()
        eng.step(np.full(eng.n, -1, dtype=np.int64))
        assert eng._deep_left > 0
        eng.invalidate_horizon()
        assert eng._deep_left == 0

    def test_deep_lane_matches_scalar_across_horizon_boundary(self):
        """Run past the proven horizon so re-probing is exercised too."""
        n = 64
        ticks = 60  # > 2x the quiet-state horizon
        acts = _make_actions("quiet", n, ticks, 0)
        params = LBParams(f=1.3, delta=2, C=4)
        col = self._quiet_engine(n=n)
        ref = Engine(
            EngineConfig(n=n, params=params, fast_path=False), rng=3
        )
        _prepare_engine(ref, "quiet", n)
        for t in range(ticks):
            a = np.asarray(acts[t])
            col.step(a)
            ref.step(a)
        assert col.l.tolist() == ref.l.tolist()
        assert col.rng.bit_generator.state == ref.rng.bit_generator.state
