"""RNG fast-forward and fused quiet-apply kernels: exactness contracts.

:class:`~repro.core.rngadvance.PermutationSkipper` must leave the bound
generator's full bit-generator state exactly where a real
``rng.permutation(n)`` call would — for every n, with and without a
buffered 32-bit high half pending — and
:func:`~repro.core.rngadvance.quiet_apply` must match the pure-numpy
fallback bit for bit, including the no-mutation-on-error guarantee.
The kernels are allowed to be *absent* (no C compiler, or
``REPRO_NO_CKERNEL``); every behaviour here must hold on the python
fallbacks too, which the forced-fallback tests pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import rngadvance
from repro.core.rngadvance import (
    PermutationSkipper,
    _states_equal,
    quiet_apply,
)


def _state(rng):
    return rng.bit_generator.state


class TestPermutationSkipper:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 17, 64, 255, 1000, 4096])
    def test_skip_matches_real_permutation(self, n):
        ref = np.random.default_rng(42)
        cand = np.random.default_rng(42)
        ref.permutation(n)
        PermutationSkipper(cand).skip(n)
        assert _states_equal(_state(ref), _state(cand))

    @pytest.mark.parametrize("pre", [1, 2, 3])
    def test_skip_with_desynced_uint32_buffer(self, pre):
        # odd 32-bit consumption leaves numpy's buffered high half
        # pending; the skip must consume draws from exactly there
        ref = np.random.default_rng(7)
        cand = np.random.default_rng(7)
        ref.integers(0, 3, size=pre)
        cand.integers(0, 3, size=pre)
        skipper = PermutationSkipper(cand)
        for n in (5, 100, 1000):
            ref.permutation(n)
            skipper.skip(n)
        assert _states_equal(_state(ref), _state(cand))

    def test_skip_interleaved_with_real_draws(self):
        ref = np.random.default_rng(9)
        cand = np.random.default_rng(9)
        skipper = PermutationSkipper(cand)
        for n in (12, 300, 33):
            ref.permutation(n)
            skipper.skip(n)
            assert ref.integers(0, 10**9) == cand.integers(0, 10**9)
        assert _states_equal(_state(ref), _state(cand))

    def test_kernel_off_forces_python_tier(self):
        skipper = PermutationSkipper(np.random.default_rng(0), kernel="off")
        assert skipper.tier == "python"

    def test_python_tier_is_exact(self):
        ref = np.random.default_rng(11)
        cand = np.random.default_rng(11)
        skipper = PermutationSkipper(cand, kernel="off")
        for n in (3, 50, 777):
            ref.permutation(n)
            skipper.skip(n)
        assert _states_equal(_state(ref), _state(cand))

    def test_missing_library_degrades_to_python(self, monkeypatch):
        monkeypatch.setattr(rngadvance, "_lib", False)  # "probed, absent"
        skipper = PermutationSkipper(np.random.default_rng(1))
        assert skipper.tier == "python"
        ref = np.random.default_rng(1)
        ref.permutation(64)
        skipper.skip(64)
        assert _states_equal(_state(ref), _state(skipper.rng))

    def test_rejects_unknown_kernel_mode(self):
        with pytest.raises(ValueError, match="kernel"):
            PermutationSkipper(np.random.default_rng(0), kernel="maybe")

    def test_tier_is_probed_not_assumed(self):
        # whatever tier was selected, it passed the full-state probe;
        # here we just pin that the attribute is one of the known tiers
        skipper = PermutationSkipper(np.random.default_rng(0))
        assert skipper.tier in ("pcg64", "next32", "python")


def _fresh_state(n=16, seed=3):
    wr = np.random.default_rng(seed)
    l = wr.integers(5, 50, size=n)  # noqa: E741 - paper symbol
    diag = l.copy()
    row_sums = l.copy()
    return l, diag, row_sums


class TestQuietApply:
    @pytest.mark.parametrize("use_kernel", [True, False])
    def test_applies_and_counts(self, use_kernel):
        l, diag, row_sums = _fresh_state()  # noqa: E741
        acts = np.array([1, -1, 0, 1] * 4, dtype=np.int64)
        before = l.copy()
        npos, nneg = quiet_apply(
            acts, l, diag, row_sums, use_kernel=use_kernel
        )
        assert (npos, nneg) == (8, 4)
        assert np.array_equal(l, before + acts)
        assert np.array_equal(diag, before + acts)
        assert np.array_equal(row_sums, before + acts)

    def test_kernel_matches_numpy_fallback(self):
        acts = np.random.default_rng(0).integers(-1, 2, size=257)
        a = _fresh_state(257)
        b = _fresh_state(257)
        ra = quiet_apply(acts, *a, use_kernel=True)
        rb = quiet_apply(acts, *b, use_kernel=False)
        assert ra == rb
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    @pytest.mark.parametrize("use_kernel", [True, False])
    def test_invalid_action_reports_first_index_and_mutates_nothing(
        self, use_kernel
    ):
        l, diag, row_sums = _fresh_state()  # noqa: E741
        acts = np.zeros(16, dtype=np.int64)
        acts[5] = 3
        acts[11] = -2
        snap = (l.copy(), diag.copy(), row_sums.copy())
        with pytest.raises(
            ValueError, match="invalid action 3 for processor 5"
        ):
            quiet_apply(acts, l, diag, row_sums, use_kernel=use_kernel)
        assert np.array_equal(l, snap[0])
        assert np.array_equal(diag, snap[1])
        assert np.array_equal(row_sums, snap[2])
