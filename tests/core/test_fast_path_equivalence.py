"""Slow/fast path equivalence: the fast path must be invisible.

The engine's vectorized fast path (``EngineConfig.fast_path=True``,
the default) batches quiet processors but must replay *exactly* the
scalar reference sweep: same RNG draw order, same state, same events.
These tests drive both paths with identical random action streams at
``n <= 32`` and require bit-for-bit agreement on ``l``, ``d``, ``b``,
``l_old``, all counters, and the full traced event sequence.

A seeded sweep covers a fixed parameter grid deterministically; a
hypothesis property searches the space adversarially (including idle
actions and degenerate n=2).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine, EngineConfig
from repro.observability import Tracer
from repro.params import LBParams


def _run(n, params, actions, fast, seed):
    tracer = Tracer()
    eng = Engine(
        EngineConfig(n=n, params=params, fast_path=fast),
        rng=seed,
        tracer=tracer,
    )
    for row in actions:
        eng.step(np.asarray(row, dtype=np.int64))
    eng.assert_invariants()
    return eng, tracer


def _assert_equivalent(n, params, actions, seed):
    fast, fast_tr = _run(n, params, actions, True, seed)
    slow, slow_tr = _run(n, params, actions, False, seed)
    assert fast.l.tolist() == slow.l.tolist()
    assert fast.l_old.tolist() == slow.l_old.tolist()
    assert np.array_equal(fast.d.dense(), slow.d.dense())
    assert np.array_equal(fast.b.dense(), slow.b.dense())
    assert fast.counters.as_dict() == slow.counters.as_dict()
    assert fast.total_ops == slow.total_ops
    assert fast.packets_migrated == slow.packets_migrated
    assert fast.total_generated == slow.total_generated
    assert fast.total_consumed == slow.total_consumed
    assert fast_tr.events == slow_tr.events


GRID = [
    # (n, f, delta, C, gen_bias, ticks, seed)
    (2, 1.5, 1, 2, 0.5, 80, 0),
    (3, 1.1, 1, 1, 0.6, 60, 1),
    (5, 1.3, 2, 4, 0.45, 60, 2),
    (8, 1.2, 3, 2, 0.55, 50, 3),
    (16, 1.1, 2, 4, 0.5, 40, 4),
    (16, 2.5, 4, 1, 0.7, 40, 5),
    (32, 1.3, 2, 4, 0.45, 30, 6),
    (32, 1.8, 5, 3, 0.65, 30, 7),
]


@pytest.mark.parametrize("n,f,delta,C,bias,ticks,seed", GRID)
def test_equivalence_seeded_sweep(n, f, delta, C, bias, ticks, seed):
    wr = np.random.default_rng(1000 + seed)
    u = wr.random((ticks, n))
    actions = np.zeros((ticks, n), dtype=np.int64)
    actions[u < bias * 0.9] = 1
    actions[u > 1 - (1 - bias) * 0.9] = -1  # ~10% idle
    _assert_equivalent(n, LBParams(f=f, delta=delta, C=C), actions, seed)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    f=st.sampled_from([1.05, 1.1, 1.3, 1.5, 2.0]),
    delta_raw=st.integers(min_value=1, max_value=4),
    C=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
    data=st.data(),
)
def test_equivalence_property(n, f, delta_raw, C, seed, data):
    delta = min(delta_raw, n - 1)
    assume(f < delta + 1)  # the provable parameter domain
    ticks = data.draw(st.integers(min_value=1, max_value=25))
    actions = data.draw(
        st.lists(
            st.lists(
                st.sampled_from([-1, 0, 1]), min_size=n, max_size=n
            ),
            min_size=ticks,
            max_size=ticks,
        )
    )
    _assert_equivalent(
        n, LBParams(f=f, delta=delta, C=C), np.asarray(actions), seed
    )


def test_fast_path_disabled_with_custom_triggers():
    from repro.core.triggers import FactorTrigger

    params = LBParams(f=1.3, delta=1, C=2)
    eng = Engine(
        EngineConfig(n=4, params=params),
        rng=0,
        triggers=[FactorTrigger(1.3) for _ in range(4)],
    )
    assert eng._fast is False


def test_fast_path_rejects_invalid_action():
    eng = Engine(
        EngineConfig(n=4, params=LBParams(f=1.3, delta=1, C=2)), rng=0
    )
    with pytest.raises(ValueError, match="invalid action"):
        eng.step(np.array([0, 2, 0, 0]))
