"""Tests for the adaptive (self-tuning) trigger extension."""

import numpy as np
import pytest

from repro import Engine, EngineConfig, LBParams
from repro.core.triggers import AdaptiveTrigger, TriggerDecision
from repro.rng import RngFactory
from repro.simulation.driver import Simulation
from repro.workload import UniformRandom


class TestAdaptiveTrigger:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTrigger(target_rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveTrigger(f0=0.9)
        with pytest.raises(ValueError):
            AdaptiveTrigger(f0=5.0, f_max=4.0)
        with pytest.raises(ValueError):
            AdaptiveTrigger(gain=1.5)

    def test_fire_widens_band(self):
        t = AdaptiveTrigger(target_rate=0.2, f0=1.5, gain=0.1)
        f_before = t.f
        d = t.check(10, 1)  # clear growth fire
        assert d is TriggerDecision.GROWTH
        assert t.f > f_before

    def test_silence_tightens_band(self):
        t = AdaptiveTrigger(target_rate=0.2, f0=1.5, gain=0.1)
        f_before = t.f
        d = t.check(10, 10)  # no fire
        assert d is TriggerDecision.NONE
        assert t.f < f_before

    def test_clamping(self):
        t = AdaptiveTrigger(target_rate=0.5, f0=1.02, f_min=1.01, f_max=1.05, gain=0.5)
        for _ in range(50):
            t.check(5, 5)  # never fires
        assert t.f == pytest.approx(1.01)

    def test_rate_statistics(self):
        t = AdaptiveTrigger()
        t.check(10, 1)
        t.check(5, 5)
        assert t.checks == 2
        assert t.fires == 1
        assert t.observed_rate == 0.5


class TestAdaptiveEngine:
    def _run(self, target):
        n = 24
        triggers = [
            AdaptiveTrigger(target_rate=target, f0=2.0, gain=0.05)
            for _ in range(n)
        ]
        factory = RngFactory(1)
        eng = Engine(
            EngineConfig(n=n, params=LBParams(f=1.3, delta=2, C=4)),
            rng=factory.named("e"),
            triggers=triggers,
        )
        sim = Simulation(
            eng, UniformRandom(n, 0.7, 0.3), workload_rng=factory.named("w")
        )
        sim.run(500)
        eng.assert_invariants()
        return triggers, eng

    def test_converges_to_target_rate(self):
        triggers, _ = self._run(0.1)
        mean_rate = np.mean([t.observed_rate for t in triggers])
        assert mean_rate == pytest.approx(0.1, abs=0.03)

    def test_rate_knob_controls_ops(self):
        """Higher target rate -> more balancing operations."""
        _, lazy = self._run(0.05)
        _, eager = self._run(0.3)
        assert eager.total_ops > 1.5 * lazy.total_ops

    def test_trigger_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Engine(
                EngineConfig(n=4, params=LBParams()),
                triggers=[AdaptiveTrigger()] * 3,
            )
