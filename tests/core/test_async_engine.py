"""Tests for the asynchronous (practical-variant) engine."""

import numpy as np
import pytest

from repro.core.async_engine import AsyncEngine, ConstantRates, TableRates
from repro.params import LBParams
from repro.workload import Section7Workload


def make(n=16, f=1.2, delta=2, latency=0.1, seed=0, g=0.7, c=0.3):
    rates = ConstantRates(np.full(n, g), np.full(n, c))
    return AsyncEngine(
        LBParams(f=f, delta=delta, C=4), rates, latency=latency, seed=seed
    )


class TestRateProviders:
    def test_constant_shapes(self):
        r = ConstantRates([0.5, 0.5], [0.1, 0.1])
        g, c = r.rates(3.0)
        assert g.tolist() == [0.5, 0.5]
        assert r.n == 2

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantRates([0.5], [0.1, 0.2])

    def test_table_rates_indexing(self):
        g = np.array([[0.1], [0.9]])
        c = np.array([[0.2], [0.3]])
        r = TableRates(g, c)
        assert r.rates(0.5)[0][0] == 0.1
        assert r.rates(1.7)[0][0] == 0.9
        assert r.rates(99.0)[0][0] == 0.9  # clamped to last row

    def test_table_rates_before_first_entry(self):
        # negative times (possible with latency arithmetic) must read
        # row 0, not wrap to the table's tail via a negative index
        g = np.array([[0.1], [0.9]])
        c = np.array([[0.2], [0.3]])
        r = TableRates(g, c)
        assert r.rates(-0.5)[0][0] == 0.1
        assert r.rates(-100.0)[0][0] == 0.1
        assert r.rates(-100.0)[1][0] == 0.2

    def test_table_rates_after_last_entry_holds_final_row(self):
        g = np.array([[0.1], [0.5], [0.9]])
        c = np.array([[0.2], [0.3], [0.4]])
        r = TableRates(g, c)
        assert r.rates(2.0)[0][0] == 0.9
        assert r.rates(2.999)[0][0] == 0.9
        assert r.rates(1e9)[1][0] == 0.4

    def test_table_rates_single_row(self):
        r = TableRates(np.array([[0.4, 0.6]]), np.array([[0.1, 0.2]]))
        for t in (-3.0, 0.0, 0.5, 7.0):
            g, c = r.rates(t)
            assert g.tolist() == [0.4, 0.6]
            assert c.tolist() == [0.1, 0.2]

    def test_table_validation(self):
        with pytest.raises(ValueError):
            TableRates(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_section7_adapter(self):
        w = Section7Workload(8, 50, layout_rng=0)
        r = TableRates(*w.phase_tables)
        assert r.n == 8


class TestAsyncEngine:
    def test_load_nonnegative_and_snapshots(self):
        res = make().run(100.0)
        assert (res.loads >= 0).all()
        assert res.loads.shape[0] == len(res.times)
        assert res.times[-1] == pytest.approx(100.0)

    def test_reproducible(self):
        a = make(seed=5).run(50.0)
        b = make(seed=5).run(50.0)
        assert np.array_equal(a.loads, b.loads)
        assert a.total_ops == b.total_ops

    def test_balances_under_growth(self):
        res = make(c=0.0, g=1.0).run(200.0)
        final = res.loads[-1].astype(float)
        assert final.std() / final.mean() < 0.25

    def test_zero_latency_never_drops(self):
        """With instantaneous ops no processor is ever busy."""
        res = make(latency=0.0).run(100.0)
        assert res.dropped_ops == 0
        assert res.declined_joins == 0

    def test_latency_causes_declines_not_collapse(self):
        """The robustness claim: big latency drops many ops but the
        balance quality survives."""
        fast = make(latency=0.0, seed=1).run(300.0)
        slow = make(latency=2.0, seed=1).run(300.0)
        assert slow.declined_joins > 0
        assert slow.total_ops < fast.total_ops
        assert slow.final_cv() < fast.final_cv() + 0.15

    def test_ops_scale_with_f(self):
        eager = make(f=1.05, seed=2).run(150.0)
        lazy = make(f=1.9, delta=2, seed=2).run(150.0)
        assert eager.total_ops > lazy.total_ops

    def test_validation(self):
        with pytest.raises(ValueError):
            make(latency=-1.0)
        rates = ConstantRates(np.full(4, 0.5), np.full(4, 0.5))
        with pytest.raises(Exception):
            AsyncEngine(LBParams(delta=4), rates)  # delta >= n

    def test_snapshot_dt(self):
        rates = ConstantRates(np.full(4, 0.5), np.full(4, 0.2))
        eng = AsyncEngine(LBParams(), rates, snapshot_dt=5.0, seed=0)
        res = eng.run(20.0)
        assert len(res.times) == 5  # 0, 5, 10, 15, 20

    def test_section7_workload_end_to_end(self):
        w = Section7Workload(16, 100, layout_rng=3)
        eng = AsyncEngine(
            LBParams(f=1.1, delta=1, C=4), TableRates(*w.phase_tables),
            latency=0.2, seed=3,
        )
        res = eng.run(100.0)
        assert res.total_ops > 0
        assert res.final_cv() < 0.6


class TestAsyncTracing:
    def test_traced_events_validate(self):
        from repro.observability import Tracer, validate_trace

        rates = ConstantRates(np.full(8, 0.7), np.full(8, 0.3))
        tracer = Tracer()
        eng = AsyncEngine(
            LBParams(f=1.2, delta=2, C=4), rates, latency=0.5, seed=0,
            tracer=tracer,
        )
        eng.run(30.0)
        counts = validate_trace(tracer.events)
        assert counts["async_deliver"] > 0
        assert counts["async_balance"] > 0
        # event times are the float Poisson clock, non-decreasing per type
        times = [ev["time"] for ev in tracer.events if ev["type"] == "async_balance"]
        assert times == sorted(times)

    def test_tracing_does_not_perturb(self):
        from repro.observability import Tracer

        a = make(seed=3)
        res_a = a.run(20.0)
        rates = ConstantRates(np.full(16, 0.7), np.full(16, 0.3))
        b = AsyncEngine(
            LBParams(f=1.2, delta=2, C=4), rates, latency=0.1, seed=3,
            tracer=Tracer(),
        )
        res_b = b.run(20.0)
        assert res_a.total_ops == res_b.total_ops
        assert np.array_equal(res_a.loads, res_b.loads)
