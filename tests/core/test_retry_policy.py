"""Property tests for :class:`repro.core.async_engine.RetryPolicy`.

The backoff schedule has three load-bearing properties the engine's
liveness depends on: delays are bounded (``base`` to
``base * (1 + jitter)``), successive attempts never shrink the base
(monotone caps), and a delay is a pure function of ``(policy, attempt,
rng state)`` so seeded runs replay exactly.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.async_engine import RetryPolicy

policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=10),
    backoff=st.floats(
        min_value=1e-3, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    ),
    jitter=st.floats(
        min_value=0.0, max_value=4.0,
        allow_nan=False, allow_infinity=False,
    ),
)

attempts = st.integers(min_value=1, max_value=20)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestDelayBounds:
    @given(policy=policies, attempt=attempts, seed=seeds)
    def test_delay_within_jitter_envelope(self, policy, attempt, seed):
        rng = np.random.default_rng(seed)
        base = policy.backoff * 2.0 ** (attempt - 1)
        delay = policy.delay(attempt, rng)
        assert base <= delay <= base * (1.0 + policy.jitter)

    @given(policy=policies, attempt=attempts, seed=seeds)
    def test_zero_jitter_is_exact_exponential(self, policy, attempt, seed):
        policy = RetryPolicy(
            max_retries=policy.max_retries, backoff=policy.backoff, jitter=0.0
        )
        rng = np.random.default_rng(seed)
        assert policy.delay(attempt, rng) == policy.backoff * 2.0 ** (
            attempt - 1
        )


class TestMonotoneCaps:
    @given(policy=policies, attempt=st.integers(min_value=1, max_value=19),
           seed=seeds)
    def test_envelope_doubles_per_attempt(self, policy, attempt, seed):
        # the *cap* is monotone: the worst-case delay of attempt k+1 is
        # exactly twice that of attempt k, and for jitter <= 1 even the
        # best case of k+1 dominates the worst case of k
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        d_k = policy.delay(attempt, rng_a)
        d_next = policy.delay(attempt + 1, rng_b)
        assert d_next == 2.0 * d_k  # same rng draw, doubled base

    @given(policy=policies, seed=seeds)
    def test_jitter_le_one_means_strictly_increasing_ranges(self, policy, seed):
        if policy.jitter > 1.0:
            return
        rng = np.random.default_rng(seed)
        worst_k = policy.backoff * (1.0 + policy.jitter)
        best_k1 = policy.backoff * 2.0
        assert best_k1 >= worst_k
        # consequently any sampled sequence is non-decreasing
        delays = [policy.delay(a, rng) for a in range(1, 6)]
        assert delays == sorted(delays)


class TestSeedReplayability:
    @given(policy=policies, attempt=attempts, seed=seeds)
    def test_same_seed_same_delay(self, policy, attempt, seed):
        a = policy.delay(attempt, np.random.default_rng(seed))
        b = policy.delay(attempt, np.random.default_rng(seed))
        assert a == b

    @given(policy=policies, attempt=attempts, seed=seeds)
    def test_delay_sequences_replay(self, policy, attempt, seed):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        seq_a = [policy.delay(k, rng_a) for k in range(1, attempt + 1)]
        seq_b = [policy.delay(k, rng_b) for k in range(1, attempt + 1)]
        assert seq_a == seq_b
