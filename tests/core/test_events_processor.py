"""Tests for event tracing and the per-processor view."""

import numpy as np
import pytest

from repro import Engine, EngineConfig, LBParams
from repro.core.events import BalanceEvent, interop_times, ops_per_tick


def engine_with_events(n=6, f=1.3, delta=2, seed=0) -> Engine:
    return Engine(
        EngineConfig(
            n=n, params=LBParams(f=f, delta=delta, C=4), record_events=True
        ),
        rng=seed,
    )


def drive(e: Engine, ticks: int, seed: int = 1) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(ticks):
        e.step((rng.random(e.n) < 0.7).astype(np.int64))


class TestEventRecording:
    def test_events_match_op_count(self):
        e = engine_with_events()
        drive(e, 50)
        assert len(e.events) == e.total_ops
        assert e.total_ops > 0

    def test_event_fields_consistent(self):
        e = engine_with_events()
        drive(e, 30)
        for ev in e.events:
            assert ev.participants[0] == ev.initiator
            assert len(ev.participants) == 3  # delta + 1
            assert sum(ev.loads_before) == sum(ev.loads_after)  # conserved
            spread = max(ev.loads_after) - min(ev.loads_after)
            assert spread <= 1
            assert ev.migrated == sum(
                max(a - b, 0) for a, b in zip(ev.loads_after, ev.loads_before)
            )

    def test_disabled_by_default(self):
        e = Engine(EngineConfig(n=4, params=LBParams()), rng=0)
        drive(e, 20)
        assert e.events == []

    def test_transfers_cover_deltas(self):
        ev = BalanceEvent(
            global_time=0,
            initiator=0,
            participants=(0, 3, 5),
            loads_before=(9, 0, 0),
            loads_after=(3, 3, 3),
            migrated=6,
        )
        moves = ev.transfers()
        assert sum(amount for _, _, amount in moves) == 6
        assert all(src == 0 for src, _, _ in moves)
        assert {dst for _, dst, _ in moves} == {3, 5}

    def test_transfers_empty_when_balanced(self):
        ev = BalanceEvent(0, 0, (0, 1), (3, 3), (3, 3), 0)
        assert ev.transfers() == []

    def test_ops_per_tick_histogram(self):
        e = engine_with_events()
        drive(e, 25)
        hist = ops_per_tick(e.events, steps=25)
        assert hist.sum() == len(e.events)

    def test_interop_times(self):
        e = engine_with_events()
        drive(e, 60)
        some_initiator = e.events[0].initiator
        gaps = interop_times(e.events, some_initiator)
        assert (gaps >= 0).all()


class TestProcessorView:
    def test_appendix_variables(self):
        e = engine_with_events(n=5)
        drive(e, 40)
        for i in range(5):
            v = e.processor(i)
            assert v.load == int(e.l[i])
            assert v.own_load == int(e.d[i, i])
            assert v.debt == int(e.b[i].sum())
            assert v.virtual_load == v.load + v.debt
            assert v.foreign_load == v.load - v.own_load
            assert v.local_time == int(e.local_time[i])

    def test_copies_not_views(self):
        e = engine_with_events(n=4)
        drive(e, 10)
        v = e.processor(0)
        d = v.d
        d[0] += 100
        assert e.d[0, 0] != d[0] or d[0] == 100  # engine unchanged
        assert v.d[0] == int(e.d[0, 0])

    def test_would_trigger_consistent(self):
        e = engine_with_events(n=4)
        drive(e, 30)
        for i in range(4):
            v = e.processor(i)
            # after a settled drive, no processor should be mid-trigger
            # (any fired trigger was serviced inline)
            assert v.would_trigger() in ("none", "growth", "decrease")

    def test_out_of_range(self):
        e = engine_with_events(n=4)
        with pytest.raises(IndexError):
            e.processor(4)

    def test_repr(self):
        e = engine_with_events(n=4)
        assert "ProcessorView(i=2" in repr(e.processor(2))

    def test_can_borrow_respects_capacity(self):
        e = engine_with_events(n=4)
        e.d[1, 0] = 5  # foreign packets available
        e.l[1] = 5
        assert e.processor(1).can_borrow
        e.b[1, :] = 0
        e.b[1, 2] = e.params.C
        assert not e.processor(1).can_borrow
