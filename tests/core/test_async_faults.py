"""Fault injection and bounded retry in the asynchronous engine.

The headline test is the golden-trace replay: a run is a pure function
of ``(engine seed, FaultPlan)``, bit for bit — same event stream, same
snapshots, same counters.  The rest pins the semantics of each fault
channel (crash freeze, message-loss reclaim, stragglers) and of the
bounded-retry policy that replaced the drop-on-refusal behaviour.
"""

import numpy as np
import pytest

from repro.core.async_engine import AsyncEngine, ConstantRates, RetryPolicy
from repro.faults.plan import CrashWindow, FaultPlan, Partition, StragglerWindow
from repro.observability import (
    Tracer,
    reconcile_async_trace,
    validate_trace,
)
from repro.params import LBParams


def make(n=16, f=1.2, delta=2, latency=0.1, seed=0, g=0.7, c=0.3, **kw):
    rates = ConstantRates(np.full(n, g), np.full(n, c))
    return AsyncEngine(
        LBParams(f=f, delta=delta, C=4), rates, latency=latency, seed=seed, **kw
    )


def stress_plan(seed=3):
    return FaultPlan(
        crashes=(
            CrashWindow(proc=2, start=5.0, end=20.0),
            CrashWindow(proc=7, start=10.0, end=25.0),
        ),
        stragglers=(StragglerWindow(proc=0, start=0.0, end=40.0, factor=8.0),),
        partitions=(Partition(start=15.0, end=18.0, groups=((0, 1, 2, 3),)),),
        message_loss=0.05,
        seed=seed,
    )


class TestGoldenTraceReplay:
    def test_bit_for_bit_replay(self):
        """Same (seed, plan) => identical trace, snapshots and counters."""
        runs = []
        for _ in range(2):
            tracer = Tracer(capacity=1_000_000)
            res = make(seed=11, faults=stress_plan()).run(40.0)
            # (engine rebuilt from scratch each iteration)
            runs.append((res, tracer.events))
        (res_a, _), (res_b, _) = runs
        assert np.array_equal(res_a.loads, res_b.loads)
        assert np.array_equal(res_a.times, res_b.times)
        assert res_a.total_ops == res_b.total_ops
        assert res_a.fault_stats == res_b.fault_stats

    def test_traced_replay_identical_events(self):
        traces = []
        for _ in range(2):
            tracer = Tracer(capacity=1_000_000)
            make(seed=11, faults=stress_plan(), tracer=tracer).run(40.0)
            traces.append(list(tracer.events))
        assert traces[0] == traces[1]
        assert any(ev["type"].startswith("fault_") for ev in traces[0])

    def test_plan_seed_only_changes_fault_decisions(self):
        a = make(seed=11, faults=stress_plan(seed=1)).run(40.0)
        b = make(seed=11, faults=stress_plan(seed=2)).run(40.0)
        # different fault stream -> different loss pattern (with high
        # probability for p=0.05 over hundreds of messages)
        assert (
            a.fault_stats["lost_messages"] != b.fault_stats["lost_messages"]
            or not np.array_equal(a.loads, b.loads)
        )

    def test_empty_plan_identical_to_no_faults(self):
        res_none = make(seed=5).run(30.0)
        res_empty = make(seed=5, faults=FaultPlan()).run(30.0)
        assert np.array_equal(res_none.loads, res_empty.loads)
        assert res_none.total_ops == res_empty.total_ops
        assert res_empty.fault_stats is None  # empty plan == perfect network

    def test_trace_validates_and_reconciles(self):
        tracer = Tracer(capacity=1_000_000)
        res = make(seed=11, faults=stress_plan(), tracer=tracer).run(40.0)
        counts = validate_trace(tracer.events)
        assert counts["fault_crash"] == 2
        assert counts["fault_recover"] == 2
        assert reconcile_async_trace(tracer.events, res) == []


class TestCrashSemantics:
    def test_crashed_load_frozen(self):
        """A crashed processor's load is dark: frozen until recovery."""
        plan = FaultPlan(crashes=(CrashWindow(proc=3, start=10.0, end=30.0),))
        eng = make(seed=2, faults=plan)
        res = eng.run(40.0)
        times = res.times
        inside = (times > 10.5) & (times < 30.0)
        frozen = res.loads[inside, 3]
        assert len(frozen) > 10
        assert (frozen == frozen[0]).all()
        assert res.fault_stats["crashes"] == 1
        assert res.fault_stats["crashed_skips"] > 0

    def test_dead_to_horizon_excluded_from_balancing(self):
        """With a crash outlasting the horizon the survivors still work."""
        plan = FaultPlan(crashes=(CrashWindow(proc=0, start=0.0, end=1e6),))
        res = make(n=8, seed=4, faults=plan).run(30.0)
        assert res.loads[-1, 0] == 0          # never generated anything
        assert res.total_ops > 0              # the other 7 kept balancing

    def test_partition_declines_counted(self):
        plan = FaultPlan(
            partitions=(
                Partition(start=0.0, end=30.0, groups=((0, 1, 2, 3),)),
            ),
        )
        res = make(n=8, seed=1, faults=plan).run(30.0)
        assert res.fault_stats["partition_declines"] > 0


class TestMessageLossAndReclaim:
    def test_losses_are_reclaimed(self):
        plan = FaultPlan(message_loss=0.2, seed=6)
        tracer = Tracer(capacity=1_000_000)
        eng = make(seed=9, faults=plan, tracer=tracer)
        res = eng.run(60.0)
        fs = res.fault_stats
        assert fs["lost_messages"] > 0
        assert fs["reclaimed_ops"] > 0
        # every lost op is either reclaimed or still awaiting its
        # timeout at the horizon (lost too close to the end)
        assert fs["lost_messages"] - fs["reclaimed_ops"] == len(eng._inflight)
        waited = [
            ev["waited"] for ev in tracer.events if ev["type"] == "fault_reclaim"
        ]
        assert waited and all(w >= 0 for w in waited)

    def test_reclaim_timeout_validation(self):
        with pytest.raises(ValueError):
            make(reclaim_timeout=0.0)

    def test_straggler_ops_counted(self):
        plan = FaultPlan(
            stragglers=(
                StragglerWindow(proc=0, start=0.0, end=50.0, factor=10.0),
            ),
        )
        res = make(seed=3, faults=plan).run(50.0)
        assert res.fault_stats["straggled_ops"] > 0


class TestRetryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_delay_exponential_with_jitter_bounds(self):
        pol = RetryPolicy(max_retries=3, backoff=0.5, jitter=0.5)
        rng = np.random.default_rng(0)
        for attempt in (1, 2, 3):
            base = 0.5 * 2 ** (attempt - 1)
            delays = [pol.delay(attempt, rng) for _ in range(200)]
            assert all(base <= d <= base * 1.5 for d in delays)

    def test_retries_recover_contended_operations(self):
        """High latency + retries: some retried initiations succeed."""
        tracer = Tracer(capacity=1_000_000)
        res = make(
            n=8, delta=4, latency=2.0, seed=0,
            retry=RetryPolicy(max_retries=3, backoff=0.2),
            tracer=tracer,
        ).run(80.0)
        assert res.retries > 0
        assert res.retries == sum(
            1 for ev in tracer.events if ev["type"] == "async_retry"
        )
        # bounded: give-ups may happen but every drop is accounted for
        assert res.give_ups <= res.dropped_ops
        assert reconcile_async_trace(tracer.events, res) == []

    def test_zero_retries_reproduces_drop_semantics(self):
        res = make(
            n=8, delta=4, latency=2.0, seed=0,
            retry=RetryPolicy(max_retries=0),
        ).run(80.0)
        assert res.retries == 0
        assert res.give_ups == res.dropped_ops  # every drop is final
