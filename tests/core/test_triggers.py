"""Tests for the factor-f trigger policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.triggers import FactorTrigger, TriggerDecision


class TestGuardedMode:
    def test_idle_zero_state_never_triggers(self):
        t = FactorTrigger(1.1)
        assert t.check(0, 0) is TriggerDecision.NONE

    def test_first_packet_triggers_growth(self):
        t = FactorTrigger(1.5)
        assert t.check(1, 0) is TriggerDecision.GROWTH

    def test_growth_threshold(self):
        t = FactorTrigger(1.5)
        assert t.check(15, 10) is TriggerDecision.GROWTH  # 15 >= 15
        assert t.check(14, 10) is TriggerDecision.NONE

    def test_decrease_threshold(self):
        t = FactorTrigger(2.0)
        assert t.check(5, 10) is TriggerDecision.DECREASE  # 5 <= 5
        assert t.check(6, 10) is TriggerDecision.NONE

    def test_decrease_to_zero(self):
        t = FactorTrigger(1.1)
        assert t.check(0, 3) is TriggerDecision.DECREASE

    def test_f_one_any_change_triggers(self):
        t = FactorTrigger(1.0)
        assert t.check(11, 10) is TriggerDecision.GROWTH
        assert t.check(9, 10) is TriggerDecision.DECREASE
        assert t.check(10, 10) is TriggerDecision.NONE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FactorTrigger(1.1).check(-1, 0)

    def test_f_below_one_rejected(self):
        with pytest.raises(ValueError):
            FactorTrigger(0.99)

    @given(
        f=st.floats(1.0, 4.0),
        own=st.integers(0, 1000),
        old=st.integers(0, 1000),
    )
    def test_never_both_and_requires_change(self, f, own, old):
        decision = FactorTrigger(f).check(own, old)
        if decision is TriggerDecision.GROWTH:
            assert own > old
        elif decision is TriggerDecision.DECREASE:
            assert own < old
        else:
            # no trigger: the load really is inside the (1/f, f) band,
            # or the processor is in the idle zero state
            if old > 0 and own > 0:
                assert old / f < own < f * old or own == old or (
                    own < f * old and own > old / f
                )

    @given(own=st.integers(0, 100), old=st.integers(0, 100))
    def test_truthiness(self, own, old):
        d = FactorTrigger(1.3).check(own, old)
        assert bool(d) == (d is not TriggerDecision.NONE)


class TestStrictMode:
    def test_zero_state_triggers_forever(self):
        """The paper's literal rule degenerates at l_old = 0 — this is
        why the guarded mode exists (DESIGN.md, decision 1)."""
        t = FactorTrigger(1.5, strict=True)
        assert t.check(0, 0) is TriggerDecision.GROWTH

    def test_equal_loads_trigger_at_f1(self):
        t = FactorTrigger(1.0, strict=True)
        assert t.check(10, 10) is TriggerDecision.GROWTH
