"""Tests for the factor-f trigger policy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.triggers import FactorTrigger, TriggerDecision


class TestGuardedMode:
    def test_idle_zero_state_never_triggers(self):
        t = FactorTrigger(1.1)
        assert t.check(0, 0) is TriggerDecision.NONE

    def test_first_packet_triggers_growth(self):
        t = FactorTrigger(1.5)
        assert t.check(1, 0) is TriggerDecision.GROWTH

    def test_growth_threshold(self):
        t = FactorTrigger(1.5)
        assert t.check(15, 10) is TriggerDecision.GROWTH  # 15 >= 15
        assert t.check(14, 10) is TriggerDecision.NONE

    def test_decrease_threshold(self):
        t = FactorTrigger(2.0)
        assert t.check(5, 10) is TriggerDecision.DECREASE  # 5 <= 5
        assert t.check(6, 10) is TriggerDecision.NONE

    def test_decrease_to_zero(self):
        t = FactorTrigger(1.1)
        assert t.check(0, 3) is TriggerDecision.DECREASE

    def test_f_one_any_change_triggers(self):
        t = FactorTrigger(1.0)
        assert t.check(11, 10) is TriggerDecision.GROWTH
        assert t.check(9, 10) is TriggerDecision.DECREASE
        assert t.check(10, 10) is TriggerDecision.NONE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FactorTrigger(1.1).check(-1, 0)

    def test_f_below_one_rejected(self):
        with pytest.raises(ValueError):
            FactorTrigger(0.99)

    @given(
        f=st.floats(1.0, 4.0),
        own=st.integers(0, 1000),
        old=st.integers(0, 1000),
    )
    def test_never_both_and_requires_change(self, f, own, old):
        decision = FactorTrigger(f).check(own, old)
        if decision is TriggerDecision.GROWTH:
            assert own > old
        elif decision is TriggerDecision.DECREASE:
            assert own < old
        else:
            # no trigger: the load really is inside the (1/f, f) band,
            # or the processor is in the idle zero state
            if old > 0 and own > 0:
                assert old / f < own < f * old or own == old or (
                    own < f * old and own > old / f
                )

    @given(own=st.integers(0, 100), old=st.integers(0, 100))
    def test_truthiness(self, own, old):
        d = FactorTrigger(1.3).check(own, old)
        assert bool(d) == (d is not TriggerDecision.NONE)


class TestStrictMode:
    def test_zero_state_triggers_forever(self):
        """The paper's literal rule degenerates at l_old = 0 — this is
        why the guarded mode exists (DESIGN.md, decision 1)."""
        t = FactorTrigger(1.5, strict=True)
        assert t.check(0, 0) is TriggerDecision.GROWTH

    def test_equal_loads_trigger_at_f1(self):
        t = FactorTrigger(1.0, strict=True)
        assert t.check(10, 10) is TriggerDecision.GROWTH


class TestQuietInterval:
    """The integer band (lo, hi) must agree with check()/fires_many().

    ``quiet_interval`` is the classifier's (and the deep-quiet
    horizon's) single source of truth: a processor is quiet iff
    ``lo < own < hi`` with integer ``own``.  Exactness matters — one
    off-by-one and the columnar engine fires (or skips) a balancing
    operation the scalar sweep does not.
    """

    @pytest.mark.parametrize("strict", [False, True])
    @pytest.mark.parametrize("f", [1.0, 1.1, 1.3, 1.5, 2.0, 2.5])
    def test_band_matches_check_brute_force(self, f, strict):
        import numpy as np

        t = FactorTrigger(f, strict=strict)
        olds = np.arange(0, 60)
        lo, hi = t.quiet_interval(olds)
        for old, lo_i, hi_i in zip(olds.tolist(), lo.tolist(), hi.tolist()):
            for own in range(0, 130):
                in_band = lo_i < own < hi_i
                fired = t.check(own, old) is not TriggerDecision.NONE
                assert in_band == (not fired), (
                    f"f={f} strict={strict} old={old} own={own}: "
                    f"band says quiet={in_band}, check fired={fired}"
                )

    def test_negative_own_probe_domain(self):
        """The classifier probes ``own - 1``, which reaches -1 at own=0.

        ``check`` rejects negatives, so the band fixes the contract
        there: for ``old >= 1`` a negative own always fires (lo >= 0),
        while the guarded ``old == 0`` band keeps ``own = -1`` quiet —
        a starved processor in the idle zero state must not be pushed
        through a DECREASE it cannot trigger in the scalar sweep.
        """
        import numpy as np

        for f in (1.0, 1.3, 2.5):
            lo, hi = FactorTrigger(f).quiet_interval(np.arange(0, 20))
            assert lo[0] < -1 < hi[0]  # old == 0: own-1 probe stays quiet
            assert (lo[1:] >= 0).all()  # old >= 1: negatives fire

    @given(
        f=st.floats(1.0, 4.0),
        old=st.integers(0, 2000),
        own=st.integers(0, 4000),
    )
    def test_band_matches_check_property(self, f, old, own):
        import numpy as np

        t = FactorTrigger(f)
        lo, hi = t.quiet_interval(np.asarray([old]))
        fired = t.check(own, old) is not TriggerDecision.NONE
        assert (int(lo[0]) < own < int(hi[0])) == (not fired)

    def test_fires_many_equals_band_complement(self):
        import numpy as np

        t = FactorTrigger(1.3)
        old = np.arange(0, 40, dtype=np.int64)
        own = np.arange(40, 0, -1, dtype=np.int64)
        lo, hi = t.quiet_interval(old)
        fires = t.fires_many(own, old)
        assert np.array_equal(fires, ~((own > lo) & (own < hi)))
