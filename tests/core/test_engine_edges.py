"""Engine edge cases: minimal networks, extreme parameters, churn."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, EngineConfig, LBParams


def run_random(engine: Engine, ticks: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(ticks):
        engine.step(rng.integers(-1, 2, size=engine.n))


class TestMinimalNetwork:
    def test_two_processors(self):
        e = Engine(
            EngineConfig(n=2, params=LBParams(f=1.1, delta=1, C=1),
                         check_invariants=True),
            rng=0,
        )
        run_random(e, 200, seed=1)
        assert e.total_ops > 0

    def test_two_processors_one_sided(self):
        """Producer/consumer pair: the tightest possible pipeline."""
        e = Engine(EngineConfig(n=2, params=LBParams(f=1.1, delta=1, C=2)), rng=0)
        for _ in range(150):
            e.step(np.array([1, -1]))
        e.assert_invariants()
        # the consumer was fed: it consumed far more than it starved
        assert e.total_consumed > e.counters.starved


class TestExtremeParameters:
    def test_f_exactly_one(self):
        """f = 1: every change triggers — maximal churn, still sound."""
        e = Engine(
            EngineConfig(n=6, params=LBParams(f=1.0, delta=2, C=4),
                         check_invariants=True),
            rng=0,
        )
        run_random(e, 100, seed=2)
        # one op per own-class change, roughly
        assert e.total_ops > 50

    def test_capacity_one(self):
        e = Engine(
            EngineConfig(n=6, params=LBParams(f=1.2, delta=1, C=1),
                         check_invariants=True),
            rng=3,
        )
        run_random(e, 200, seed=3)
        assert int(e.b.sum()) <= 1 * 6 + e.n  # near-capacity bound

    def test_delta_n_minus_one(self):
        """Full-machine balancing: spread can never exceed 1 right
        after any op."""
        e = Engine(EngineConfig(n=5, params=LBParams(f=1.1, delta=4, C=4)), rng=4)
        a = np.zeros(5, dtype=np.int64)
        a[0] = 1
        for _ in range(100):
            e.step(a)
        assert e.l.max() - e.l.min() <= 2  # <=1 at ops, +1 drift between

    def test_out_of_domain_f(self):
        """f >= delta + 1 voids the theorems but must not crash."""
        e = Engine(
            EngineConfig(
                n=6,
                params=LBParams(f=3.0, delta=1, C=4, require_provable=False),
                check_invariants=True,
            ),
            rng=5,
        )
        run_random(e, 150, seed=5)


class TestChurn:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=15)
    def test_drain_refill_cycles(self, seed):
        """Repeated total drains and refills never corrupt the ledger."""
        e = Engine(
            EngineConfig(n=4, params=LBParams(f=1.2, delta=1, C=2),
                         check_invariants=True),
            rng=seed,
        )
        gen = np.ones(4, dtype=np.int64)
        con = -np.ones(4, dtype=np.int64)
        for _ in range(5):
            for _ in range(20):
                e.step(gen)
            for _ in range(25):
                e.step(con)
        assert (e.l >= 0).all()

    def test_long_alternation_bounded_debt(self):
        e = Engine(EngineConfig(n=8, params=LBParams(f=1.1, delta=1, C=4)), rng=6)
        rng = np.random.default_rng(6)
        for t in range(400):
            phase = (t // 40) % 2
            p_gen = 0.8 if phase == 0 else 0.1
            p_con = 0.1 if phase == 0 else 0.8
            u = rng.random(8)
            a = np.where(u < p_gen, 1, np.where(u < p_gen + p_con, -1, 0))
            e.step(a.astype(np.int64))
        e.assert_invariants()
        assert int(e.b.sum()) <= 4 * 8  # total debt bounded by C * n
