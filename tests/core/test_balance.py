"""Tests for even_split / snake_distribute — the appendix invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.balance import SnakeDealer, even_split, snake_distribute


class TestEvenSplit:
    def test_exact_division(self):
        assert even_split(9, 3).tolist() == [3, 3, 3]

    def test_remainder_placement(self):
        assert even_split(7, 3, start=0).tolist() == [3, 2, 2]
        assert even_split(7, 3, start=1).tolist() == [2, 3, 2]
        assert even_split(7, 3, start=2).tolist() == [2, 2, 3]

    def test_wraparound(self):
        assert even_split(8, 3, start=2).tolist() == [3, 2, 3]

    def test_zero_total(self):
        assert even_split(0, 4).tolist() == [0, 0, 0, 0]

    def test_single_participant(self):
        assert even_split(5, 1).tolist() == [5]

    def test_invalid(self):
        with pytest.raises(ValueError):
            even_split(5, 0)
        with pytest.raises(ValueError):
            even_split(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 64), st.integers(0, 63))
    def test_properties(self, total, k, start):
        out = even_split(total, k, start=start % k)
        assert out.sum() == total
        assert out.max() - out.min() <= 1
        assert (out >= 0).all()


class TestSnakeDistribute:
    def test_empty_classes(self):
        out = snake_distribute(np.array([], dtype=int), 3)
        assert out.shape == (3, 0)

    def test_single_class_equals_even_split(self):
        assert np.array_equal(
            snake_distribute([7], 3, start=1)[:, 0], even_split(7, 3, start=1)
        )

    def test_appendix_invariants_example(self):
        totals = np.array([5, 3, 0, 7, 1])
        M = snake_distribute(totals, 3, start=0)
        assert (M.sum(axis=0) == totals).all()
        for j in range(totals.size):
            assert M[:, j].max() - M[:, j].min() <= 1
        rs = M.sum(axis=1)
        assert rs.max() - rs.min() <= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            snake_distribute([3, -1], 2)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            snake_distribute(np.zeros((2, 2), dtype=int), 2)

    def test_k_invalid(self):
        with pytest.raises(ValueError):
            snake_distribute([1], 0)

    @given(
        totals=st.lists(st.integers(0, 50), min_size=1, max_size=40),
        k=st.integers(1, 9),
        start=st.integers(0, 8),
    )
    def test_all_three_invariants(self, totals, k, start):
        """The appendix's simultaneous ±1 invariants hold for every
        input — this is the core correctness property of the snake."""
        M = snake_distribute(np.asarray(totals), k, start=start % k)
        # class totals conserved
        assert (M.sum(axis=0) == np.asarray(totals)).all()
        # per-class balance
        if k > 1:
            spread_per_class = M.max(axis=0) - M.min(axis=0)
            assert (spread_per_class <= 1).all()
        # per-participant totals balance
        rs = M.sum(axis=1)
        assert rs.max() - rs.min() <= 1
        assert (M >= 0).all()

    @given(
        totals=st.lists(st.integers(0, 20), min_size=1, max_size=10),
        k=st.integers(2, 6),
    )
    def test_matches_sequential_dealer(self, totals, k):
        """The vectorised implementation equals the obvious sequential
        circular deal (oracle test)."""
        M = snake_distribute(np.asarray(totals), k, start=0)
        dealer = SnakeDealer(k, start=0)
        for j, t in enumerate(totals):
            assert np.array_equal(M[:, j], dealer.deal(t))


class TestSnakeDealer:
    def test_pointer_advances_by_total(self):
        d = SnakeDealer(4, start=1)
        d.deal(6)  # 6 mod 4 = 2 -> pointer 3
        assert d.ptr == 3

    def test_continuity_gives_row_balance(self):
        d = SnakeDealer(3)
        rows = np.zeros(3, dtype=int)
        for t in [4, 5, 1, 2, 8]:
            rows += d.deal(t)
        assert rows.max() - rows.min() <= 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SnakeDealer(0)
