"""Tests for the OPGC model and the section-6 decrease simulation."""

import numpy as np
import pytest

from repro.core.opgc import (
    expected_decrease_ops,
    opgc_expected_ratio,
    simulate_decrease,
    simulate_opgc,
)
from repro.theory.bounds import (
    decrease_steps_expected,
    lemma5_lower,
    lemma5_upper,
    lemma6_upper,
)
from repro.theory.fixpoint import fix


class TestSimulateOPGC:
    def test_phases_run_in_order(self):
        res = simulate_opgc(8, 1, 1.2, [(1.0, 0.0, 50), (0.0, 1.0, 30)], seed=0)
        assert res.steps == 80

    def test_directions_recorded(self):
        res = simulate_opgc(
            8, 1, 1.2, [(1.0, 0.0, 60), (0.0, 1.0, 60)], seed=1, initial_load=20
        )
        assert set(np.unique(res.op_directions)) <= {-1, 1}
        assert (res.op_directions == 1).any()
        assert (res.op_directions == -1).any()

    def test_consume_requires_load(self):
        res = simulate_opgc(4, 1, 1.1, [(0.0, 1.0, 50)], seed=2, initial_load=0)
        # nothing to consume, nothing happens
        assert res.loads_at_ops[-1].sum() == 0

    def test_loads_never_negative(self):
        res = simulate_opgc(
            6, 2, 1.3, [(0.5, 0.5, 200)], seed=3, initial_load=3
        )
        assert (res.loads_at_ops >= 0).all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            simulate_opgc(1, 1, 1.1, [(1.0, 0.0, 10)])
        with pytest.raises(ValueError):
            simulate_opgc(8, 1, 0.5, [(1.0, 0.0, 10)])


class TestTheorem3Empirically:
    def test_ratio_within_bounds_through_phases(self):
        """Generate, then consume: the expected-load ratio stays within
        [FIX(n,d,1/f), FIX(n,d,f)] (with slack f for mid-trigger drift
        — the paper's Theorem-4 proof adds exactly this factor)."""
        n, d, f = 16, 1, 1.4
        phases = [(1.0, 0.0, 300), (0.0, 1.0, 200)]
        prod, oth = opgc_expected_ratio(
            n, d, f, phases, runs=80, initial_load=400, seed=0
        )
        ratio = prod[50:] / oth[50:]
        hi = fix(n, d, f) * f
        lo = fix(n, d, 1 / f) / f
        assert ratio.max() <= hi * 1.03
        assert ratio.min() >= lo * 0.97


class TestDecreaseSimulation:
    def test_counts_consumption(self):
        res = simulate_decrease(100, 50, 16, 1, 1.2, seed=0)
        assert res.consumed == 50
        assert res.ops >= 1
        assert res.steps >= 50

    def test_measured_within_lemma5_bounds(self):
        x, c, n, d, f = 1000, 500, 64, 1, 1.1
        measured = expected_decrease_ops(x, c, n, d, f, runs=20, seed=1)
        lo = lemma5_lower(x, c, n, d, f)
        hi = lemma5_upper(x, c, n, d, f)
        assert lo - 1 <= measured
        assert hi is not None and measured <= hi + 1

    def test_lemma6_tighter_and_respected(self):
        x, c, n, d, f = 1000, 500, 64, 1, 1.1
        measured = expected_decrease_ops(x, c, n, d, f, runs=20, seed=2)
        l6 = lemma6_upper(x, c, n, d, f)
        hi = lemma5_upper(x, c, n, d, f)
        assert l6 is not None and hi is not None and l6 <= hi
        assert measured <= l6 + 1.5

    def test_matches_expected_model(self):
        x, c, n, d, f = 1000, 500, 64, 4, 1.1
        measured = expected_decrease_ops(x, c, n, d, f, runs=20, seed=3)
        model = decrease_steps_expected(x, c, n, d, f)
        assert model is not None
        assert abs(measured - model) <= 2

    def test_f_sensitivity(self):
        """More aggressive trigger factor -> far fewer operations."""
        slow = expected_decrease_ops(1000, 500, 32, 1, 1.05, runs=10, seed=4)
        fast = expected_decrease_ops(1000, 500, 32, 1, 1.8, runs=10, seed=4)
        assert fast < slow / 3

    def test_scale_invariance(self):
        a = expected_decrease_ops(1000, 500, 32, 1, 1.2, runs=15, seed=5)
        b = expected_decrease_ops(4000, 2000, 32, 1, 1.2, runs=15, seed=5)
        assert abs(a - b) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_decrease(1, 1, 8, 1, 1.1)
        with pytest.raises(ValueError):
            simulate_decrease(10, 10, 8, 1, 1.1)
