"""Tests for candidate selection strategies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.selection import GlobalRandomSelector, NeighborhoodSelector


class TestGlobalRandom:
    def test_excludes_initiator(self, rng):
        sel = GlobalRandomSelector(8)
        for i in range(8):
            for _ in range(50):
                picks = sel.select(i, 3, rng)
                assert i not in picks
                assert len(set(picks.tolist())) == 3
                assert ((0 <= picks) & (picks < 8)).all()

    def test_delta_equals_n_minus_1(self, rng):
        sel = GlobalRandomSelector(5)
        picks = sel.select(2, 4, rng)
        assert sorted(picks.tolist()) == [0, 1, 3, 4]

    def test_uniformity(self):
        """Every other processor is picked with equal frequency."""
        rng = np.random.default_rng(0)
        sel = GlobalRandomSelector(6)
        counts = np.zeros(6)
        trials = 30_000
        for _ in range(trials):
            counts[sel.select(0, 2, rng)] += 1
        assert counts[0] == 0
        freq = counts[1:] / (trials * 2 / 5)
        assert np.allclose(freq, 1.0, atol=0.05)

    def test_invalid(self, rng):
        sel = GlobalRandomSelector(4)
        with pytest.raises(ValueError):
            sel.select(4, 1, rng)
        with pytest.raises(ValueError):
            sel.select(0, 4, rng)
        with pytest.raises(ValueError):
            GlobalRandomSelector(1)

    @given(
        n=st.integers(2, 40),
        initiator=st.integers(0, 39),
        delta=st.integers(1, 39),
        seed=st.integers(0, 1000),
    )
    def test_contract(self, n, initiator, delta, seed):
        if initiator >= n or delta >= n:
            return
        rng = np.random.default_rng(seed)
        picks = GlobalRandomSelector(n).select(initiator, delta, rng)
        assert picks.shape == (delta,)
        assert initiator not in picks
        assert len(np.unique(picks)) == delta


class TestNeighborhood:
    def test_small_pool_used_entirely(self, rng):
        sel = NeighborhoodSelector([[1], [0]])
        assert sel.select(0, 3, rng).tolist() == [1]

    def test_pool_subset(self, rng):
        sel = NeighborhoodSelector([[1, 2, 3], [0], [0], [0]])
        for _ in range(30):
            picks = sel.select(0, 2, rng)
            assert set(picks.tolist()) <= {1, 2, 3}
            assert len(picks) == 2

    def test_self_in_pool_rejected(self):
        with pytest.raises(ValueError):
            NeighborhoodSelector([[0, 1], [0]])

    def test_duplicate_pool_rejected(self):
        with pytest.raises(ValueError):
            NeighborhoodSelector([[1, 1], [0]])
