"""Tests for the baseline balancers."""

import numpy as np
import pytest

from repro.baselines import (
    GlobalAverageOracle,
    GradientModel,
    NoBalance,
    RSU,
    RandomScatter,
    run_baseline,
)
from repro.network import Torus2D
from repro.workload import ConstantWorkload, OneProducer, UniformRandom


class TestNoBalance:
    def test_loads_follow_actions(self):
        b = NoBalance(4, rng=0)
        b.step(np.array([1, 1, 0, 0]))
        b.step(np.array([1, -1, 0, -1]))
        assert b.l.tolist() == [2, 0, 0, 0]
        assert b.counters.starved == 1

    def test_never_migrates(self):
        res = run_baseline(NoBalance(8, rng=0), UniformRandom(8, 0.7, 0.2), 50, seed=1)
        assert res.packets_migrated == 0
        assert res.total_ops == 0


class TestRandomScatter:
    def test_conserves_total(self):
        b = RandomScatter(6, rng=0)
        for _ in range(30):
            b.step(np.ones(6, dtype=np.int64))
        assert b.l.sum() == 30 * 6

    def test_high_variance_despite_uniform_expectation(self):
        """Section 5's point: expectations balanced, variation huge."""
        finals = []
        for seed in range(60):
            b = RandomScatter(8, rng=seed)
            for _ in range(20):
                b.step(np.ones(8, dtype=np.int64))
            finals.append(b.l.copy())
        finals = np.asarray(finals, dtype=float)
        mean_per_proc = finals.mean(axis=0)
        # expectations roughly uniform...
        assert mean_per_proc.std() / mean_per_proc.mean() < 0.5
        # ...but within a run the load is wildly uneven (CV ~ 1, versus
        # ~0 for the paper's algorithm at the same workload)
        per_run_cv = finals.std(axis=1) / finals.mean(axis=1)
        assert per_run_cv.mean() > 0.7

    def test_counts_migrations(self):
        b = RandomScatter(4, rng=1)
        b.step(np.ones(4, dtype=np.int64))
        b.step(np.zeros(4, dtype=np.int64))
        assert b.packets_migrated > 0


class TestRSU:
    def test_balances_one_producer(self):
        res = run_baseline(RSU(16, rng=2), OneProducer(16, 1.0), 400, seed=3)
        final = res.loads[-1]
        assert final.max() <= 3 * final.mean() + 2

    def test_threshold_respected(self):
        b = RSU(2, threshold=5, rng=0)
        b.l = np.array([6, 2], dtype=np.int64)
        for _ in range(20):
            b._balance()
        assert b.l.tolist() == [6, 2]  # diff 4 <= threshold

    def test_pair_conserves(self):
        b = RSU(8, rng=4)
        for _ in range(50):
            b.step(np.ones(8, dtype=np.int64))
        assert b.l.sum() == 400

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            RSU(4, threshold=0)


class TestGradient:
    def test_packets_flow_downhill(self):
        topo = Torus2D(16)
        b = GradientModel(topo, low_watermark=0, high_watermark=2, rng=0)
        w = OneProducer(16, 1.0)
        res = run_baseline(b, w, 200, seed=5)
        final = res.loads[-1]
        assert final.max() < 200  # producer did shed load
        assert b.packets_migrated > 0

    def test_no_flow_when_flat(self):
        topo = Torus2D(9)
        b = GradientModel(topo, low_watermark=1, high_watermark=3, rng=0)
        b.l = np.full(9, 2, dtype=np.int64)
        b._balance()
        assert (b.l == 2).all()

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            GradientModel(Torus2D(9), low_watermark=3, high_watermark=2)

    def test_one_packet_per_tick_per_sender(self):
        topo = Torus2D(9)
        b = GradientModel(topo, low_watermark=0, high_watermark=1, rng=0)
        b.l = np.array([10, 0, 0, 0, 0, 0, 0, 0, 0], dtype=np.int64)
        b._balance()
        assert b.l[0] == 9  # exactly one moved


class TestOracle:
    def test_spread_at_most_one(self):
        res = run_baseline(
            GlobalAverageOracle(8, rng=0), UniformRandom(8, 0.8, 0.1), 100, seed=6
        )
        for row in res.loads[1:]:
            assert row.max() - row.min() <= 1

    def test_conserves(self):
        b = GlobalAverageOracle(5, rng=1)
        b.step(np.array([1, 1, 1, 0, 0]))
        assert b.l.sum() == 3


class TestRunBaseline:
    def test_meta_and_shapes(self):
        res = run_baseline(NoBalance(4, rng=0), ConstantWorkload([1, 0, 0, 0]), 10, seed=0)
        assert res.loads.shape == (11, 4)
        assert res.meta["balancer"] == "NoBalance"
        assert res.steps == 10

    def test_n_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_baseline(NoBalance(4, rng=0), ConstantWorkload([1, 0]), 5)
