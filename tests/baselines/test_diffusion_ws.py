"""Tests for the diffusion and work-stealing baselines."""

import numpy as np
import pytest

from repro.baselines import Diffusion, WorkStealing, run_baseline
from repro.network import Hypercube, Ring, Torus2D
from repro.workload import OneProducer


class TestDiffusion:
    def test_conserves_load(self):
        b = Diffusion(Torus2D(16), rng=0)
        rng = np.random.default_rng(1)
        injected = 0
        for _ in range(100):
            a = (rng.random(16) < 0.6).astype(np.int64)
            injected += int(a.sum())
            b.step(a)
        assert int(b.l.sum()) == injected
        assert (b.l >= 0).all()

    def test_flattens_one_producer(self):
        res = run_baseline(
            Diffusion(Hypercube(4), rng=0), OneProducer(16, 1.0), 400, seed=2
        )
        final = res.loads[-1]
        assert final.max() <= 3 * final.mean() + 3

    def test_spectral_gap_effect(self):
        """Hypercube (expander-ish) balances faster than the ring."""
        def cv_after(topo, steps=300):
            res = run_baseline(
                Diffusion(topo, rng=0), OneProducer(topo.n, 1.0), steps, seed=3
            )
            f = res.loads[-1].astype(float)
            return f.std() / max(f.mean(), 1e-9)

        assert cv_after(Hypercube(4)) < cv_after(Ring(16))

    def test_flat_state_is_fixed_point(self):
        b = Diffusion(Torus2D(9), rng=0)
        b.l = np.full(9, 7, dtype=np.int64)
        b._balance()
        assert (b.l == 7).all()

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Diffusion(Torus2D(9), alpha=0.5)  # > 1/deg on a degree-4 torus
        with pytest.raises(ValueError):
            Diffusion(Torus2D(9), alpha=0.0)

    def test_randomised_rounding_unbiased(self):
        """Small differences still move in expectation."""
        moved = 0
        for seed in range(200):
            b = Diffusion(Ring(4), alpha=0.25, rng=seed)
            b.l = np.array([2, 0, 0, 0], dtype=np.int64)
            b._balance()
            moved += 2 - int(b.l[0])
        assert moved > 0  # deterministic floor would never move 0.5 packets


class TestWorkStealing:
    def test_conserves_and_nonnegative(self):
        b = WorkStealing(8, rng=0)
        rng = np.random.default_rng(1)
        total = 0
        for _ in range(100):
            a = (rng.random(8) < 0.5).astype(np.int64)
            total += int(a.sum())
            b.step(a)
        assert b.l.sum() == total
        assert (b.l >= 0).all()

    def test_feeds_starving_processors(self):
        res = run_baseline(
            WorkStealing(16, rng=0), OneProducer(16, 1.0), 300, seed=2
        )
        # once warm, most processors hold work most of the time
        warm = res.loads[100:]
        busy_fraction = (warm > 0).mean()
        assert busy_fraction > 0.8

    def test_does_not_equalise(self):
        """Steal-on-empty keeps everyone busy but NOT equal — the
        paper's distinction between its two application classes."""
        from repro import LBParams, run_simulation

        n, steps = 16, 300
        ws = run_baseline(WorkStealing(n, rng=1), OneProducer(n, 1.0), steps, seed=3)
        lm = run_simulation(
            n, LBParams(f=1.2, delta=1, C=4), OneProducer(n, 1.0), steps, seed=3
        )
        def cv(loads):
            f = loads[-1].astype(float)
            return f.std() / max(f.mean(), 1e-9)
        assert cv(lm.loads) < cv(ws.loads)

    def test_steal_counters(self):
        b = WorkStealing(4, rng=0)
        b.l = np.array([0, 20, 0, 0], dtype=np.int64)
        b._balance()
        assert b.successful_steals >= 1
        assert b.packets_migrated > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkStealing(4, steal_fraction=0.0)
        with pytest.raises(ValueError):
            WorkStealing(4, attempts=0)
        with pytest.raises(ValueError):
            WorkStealing(4, low_watermark=-1)
