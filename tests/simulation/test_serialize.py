"""Tests for persistence: results, engine checkpoints, traces."""

import numpy as np
import pytest

from repro import Engine, EngineConfig, LBParams, run_simulation
from repro.simulation.serialize import (
    load_engine_state,
    load_result,
    load_trace,
    save_engine_state,
    save_result,
    save_trace,
)
from repro.workload import UniformRandom
from repro.workload.trace import RecordedWorkload, TraceRecorder


class TestResultRoundTrip:
    def test_round_trip(self, tmp_path):
        res = run_simulation(
            8, LBParams(f=1.2, delta=1, C=4), UniformRandom(8, 0.6, 0.3),
            steps=40, seed=0, meta={"tag": "x"},
        )
        p = save_result(res, tmp_path / "run.npz")
        back = load_result(p)
        assert np.array_equal(back.loads, res.loads)
        assert back.total_ops == res.total_ops
        assert back.packets_migrated == res.packets_migrated
        assert back.counters.as_dict() == res.counters.as_dict()
        assert back.meta["tag"] == "x"

    def test_schema_guard(self, tmp_path):
        res = run_simulation(
            4, LBParams(), UniformRandom(4, 0.5, 0.5), steps=5, seed=0
        )
        p = save_result(res, tmp_path / "r.npz")
        with pytest.raises(ValueError):
            load_trace(p)  # wrong schema

    def test_creates_directories(self, tmp_path):
        res = run_simulation(
            4, LBParams(), UniformRandom(4, 0.5, 0.5), steps=5, seed=0
        )
        p = save_result(res, tmp_path / "deep" / "dir" / "r.npz")
        assert p.exists()


class TestEngineCheckpoint:
    def _advance(self, engine, steps, seed):
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            engine.step(rng.integers(-1, 2, size=engine.n))

    def test_resume_bit_exact(self, tmp_path):
        """checkpoint + resume with the same downstream RNG equals an
        uninterrupted run."""
        cfg = EngineConfig(n=6, params=LBParams(f=1.3, delta=2, C=4))
        full = Engine(cfg, rng=1)
        self._advance(full, 30, seed=9)
        half = Engine(cfg, rng=1)
        self._advance(half, 15, seed=9)  # same action stream prefix...
        p = save_engine_state(half, tmp_path / "ckpt.npz")
        # ...but resuming requires the same engine RNG state, which the
        # checkpoint intentionally does not capture; verify instead that
        # the restored engine is a valid, invariant-satisfying clone
        restored = load_engine_state(p, rng=123)
        assert np.array_equal(restored.d, half.d)
        assert np.array_equal(restored.b, half.b)
        assert np.array_equal(restored.l, half.l)
        assert np.array_equal(restored.l_old, half.l_old)
        assert restored.total_ops == half.total_ops
        assert restored.counters.as_dict() == half.counters.as_dict()
        restored.assert_invariants()

    def test_restored_engine_keeps_running(self, tmp_path):
        cfg = EngineConfig(n=5, params=LBParams(f=1.2, delta=1, C=4))
        e = Engine(cfg, rng=0)
        self._advance(e, 20, seed=2)
        restored = load_engine_state(
            save_engine_state(e, tmp_path / "c.npz"), rng=7
        )
        self._advance(restored, 20, seed=3)
        restored.assert_invariants()

    def test_config_preserved(self, tmp_path):
        cfg = EngineConfig(
            n=4,
            params=LBParams(f=1.5, delta=2, C=8),
            refresh_participants=False,
            strict_trigger=True,
        )
        e = Engine(cfg, rng=0)
        restored = load_engine_state(save_engine_state(e, tmp_path / "c.npz"))
        assert restored.params.f == 1.5
        assert restored.params.C == 8
        assert restored.config.strict_trigger is True
        assert restored.config.refresh_participants is False


class TestTraceRoundTrip:
    def test_round_trip(self, tmp_path, rng):
        rec = TraceRecorder(UniformRandom(5, 0.6, 0.4))
        loads = np.full(5, 3)
        for t in range(15):
            rec.actions(t, loads, rng)
        trace = rec.trace()
        back = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert isinstance(back, RecordedWorkload)
        assert np.array_equal(back.matrix, trace.matrix)
