"""Tests for the pluggable batch-execution backends.

The centrepiece is the cross-backend equivalence suite: the seeded
experiment grid must be *bit-identical* on every backend — collector
envelopes, merged metrics, golden event traces.  That property is what
makes ``REPRO_BACKEND`` a pure deployment knob (docs/BACKENDS.md).
"""

import warnings

import numpy as np
import pytest

from repro.observability.schema import validate_event
from repro.observability.tracer import Tracer
from repro.rng import RngFactory
from repro.simulation.backends import (
    BackendFallbackWarning,
    BackendUnavailable,
    BatchClient,
    Capabilities,
    DistributedClient,
    MultiprocessingClient,
    NativeClient,
    available_backends,
    get_client,
    resolve_backend,
)
from repro.simulation.backends import pool as pool_module
from repro.simulation.backends import registry as registry_module
from repro.simulation.backends.pool import auto_jobs
from repro.simulation.parallel import parallel_map


def square(x: int) -> int:
    return x * x


def _traced_run(r: int) -> list[dict]:
    """One tiny traced simulation; returns the run's golden trace."""
    from repro.params import LBParams
    from repro.simulation.driver import run_simulation
    from repro.workload.phases import Section7Workload

    factory = RngFactory(7).child_factory("run", r)
    workload = Section7Workload(8, 40, layout_rng=factory.named("layout"))
    tracer = Tracer()
    run_simulation(
        8, LBParams(f=1.3, delta=2, C=4), workload, 40,
        seed=factory, tracer=tracer,
    )
    return tracer.events


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    return monkeypatch


class TestCrossBackendEquivalence:
    """native and multiprocessing must agree bit for bit."""

    def test_quality_experiment_bit_identical(self):
        from repro.experiments.config import QualityConfig
        from repro.experiments.runner import quality_experiment

        cfg = QualityConfig(n=8, steps=60, runs=3, seed=4, snapshot_ticks=(30,))
        a = quality_experiment(cfg, backend="native", collect_metrics=True)
        b = quality_experiment(
            cfg, backend="multiprocessing", jobs=2, collect_metrics=True
        )
        for field in ("mean", "min", "max", "mean_spread"):
            av, bv = getattr(a.envelope, field, None), getattr(b.envelope, field, None)
            if av is not None:
                assert np.array_equal(av, bv), field
        assert a.snapshots.keys() == b.snapshots.keys()
        for t in a.snapshots:
            for k in a.snapshots[t]:
                assert np.array_equal(a.snapshots[t][k], b.snapshots[t][k])
        assert [c.as_dict() for c in a.counters] == [
            c.as_dict() for c in b.counters
        ]
        assert a.mean_ops == b.mean_ops
        assert a.mean_migrated == b.mean_migrated
        assert np.array_equal(a.final_rel_spreads, b.final_rel_spreads)
        pa, pb = a.metrics.as_dict(), b.metrics.as_dict()
        assert pa["counters"] == pb["counters"]
        assert pa["histograms"] == pb["histograms"]

    def test_golden_traces_identical(self):
        tasks = [0, 1, 2]
        with get_client("native") as client:
            serial = list(client.map_ordered(_traced_run, tasks))
        with get_client("multiprocessing", jobs=2) as client:
            pooled = list(client.map_ordered(_traced_run, tasks, chunksize=1))
            assert client.used_backend in ("multiprocessing", "native")
        assert serial == pooled  # full events, seq numbers and all
        assert all(len(ev) > 0 for ev in serial)

    def test_resilience_doc_identical(self):
        from repro.experiments.resilience import (
            ResilienceConfig,
            resilience_experiment,
        )

        cfg = ResilienceConfig(n=8, horizon=45.0, seed=3)
        a = resilience_experiment(cfg, backend="native")
        b = resilience_experiment(cfg, backend="multiprocessing", jobs=2)
        assert a.pop("backend") == "native"
        assert b.pop("backend") in ("multiprocessing", "native")
        assert a == b


class TestSelectionRules:
    def test_defaults_to_native_serial(self, clean_env):
        assert resolve_backend() == ("native", 1)

    def test_jobs_gt_one_implies_multiprocessing(self, clean_env):
        assert resolve_backend(jobs=4) == ("multiprocessing", 4)
        assert resolve_backend(jobs=1) == ("native", 1)

    def test_env_backend_beats_jobs_derivation(self, clean_env):
        clean_env.setenv("REPRO_BACKEND", "native")
        assert resolve_backend(jobs=4) == ("native", 4)

    def test_param_beats_env(self, clean_env):
        clean_env.setenv("REPRO_BACKEND", "multiprocessing")
        name, _ = resolve_backend(backend="native")
        assert name == "native"

    def test_jobs_param_beats_env(self, clean_env):
        clean_env.setenv("REPRO_JOBS", "7")
        assert resolve_backend(jobs=2) == ("multiprocessing", 2)

    def test_env_jobs_alone_parallelises(self, clean_env):
        clean_env.setenv("REPRO_JOBS", "8")
        assert resolve_backend() == ("multiprocessing", 8)

    def test_parallel_backend_defaults_to_auto_jobs(self, clean_env):
        assert resolve_backend(backend="multiprocessing") == (
            "multiprocessing", auto_jobs()
        )

    def test_jobs_zero_means_auto(self, clean_env):
        clean_env.setenv("REPRO_JOBS", "0")
        _, jobs = resolve_backend(backend="multiprocessing")
        assert jobs == auto_jobs()

    def test_backend_name_normalised(self, clean_env):
        assert resolve_backend(backend=" Native ")[0] == "native"

    def test_unknown_backend_param_raises(self, clean_env):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend(backend="bogus")

    def test_unknown_backend_env_raises(self, clean_env):
        clean_env.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend()

    def test_malformed_repro_jobs_raises(self, clean_env):
        clean_env.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_backend()

    def test_get_client_honours_env(self, clean_env):
        clean_env.setenv("REPRO_BACKEND", "multiprocessing")
        with get_client(jobs=2) as client:
            assert isinstance(client, MultiprocessingClient)
            assert client.jobs == 2
        with get_client("native") as client:
            assert isinstance(client, NativeClient)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == (
            "distributed", "multiprocessing", "native",
        )

    def test_register_requires_name(self):
        class Nameless(NativeClient):
            name = ""

        with pytest.raises(ValueError, match="name"):
            registry_module.register_backend(Nameless)

    def test_register_rejects_taken_name(self):
        class Impostor(NativeClient):
            name = "native"

        with pytest.raises(ValueError, match="already taken"):
            registry_module.register_backend(Impostor)

    def test_third_party_backend_selectable(self, clean_env):
        @registry_module.register_backend
        class Reversed(BatchClient):
            name = "test-reversed"
            capabilities = Capabilities()

            def __init__(self, jobs=None, *, tracer=None):
                super().__init__()

            def map_ordered(self, fn, items, *, chunksize=None):
                yield from [fn(x) for x in items]

        try:
            assert "test-reversed" in available_backends()
            with get_client("test-reversed") as client:
                assert list(client.map_ordered(square, [1, 2])) == [1, 4]
        finally:
            registry_module._REGISTRY.pop("test-reversed")


class TestFallback:
    @pytest.fixture
    def broken_pool(self, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("no /dev/shm in this sandbox")

        monkeypatch.setattr(pool_module, "ProcessPoolExecutor", explode)

    def test_pool_start_failure_degrades_loudly(self, broken_pool):
        tracer = Tracer()
        with MultiprocessingClient(jobs=2, tracer=tracer) as client:
            with pytest.warns(BackendFallbackWarning, match="falling back"):
                out = list(client.map_ordered(square, list(range(8))))
            assert out == [x * x for x in range(8)]
            assert client.fell_back
            assert client.used_backend == "native"
            events = tracer.events
            assert [ev["type"] for ev in events] == ["backend_fallback"]
            validate_event(events[0])
            assert events[0]["requested"] == "multiprocessing"
            assert events[0]["chosen"] == "native"
            assert "OSError" in events[0]["reason"]

    def test_fallback_warns_only_once(self, broken_pool):
        with MultiprocessingClient(jobs=2) as client:
            with pytest.warns(BackendFallbackWarning):
                list(client.map_ordered(square, [1, 2, 3]))
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # a second warning would raise
                assert list(client.map_ordered(square, [4, 5])) == [16, 25]

    def test_single_item_batch_never_touches_the_pool(self, broken_pool):
        with MultiprocessingClient(jobs=2) as client:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert list(client.map_ordered(square, [6])) == [36]
            assert not client.fell_back

    def test_no_tracer_is_fine(self, broken_pool):
        with MultiprocessingClient(jobs=2) as client:
            with pytest.warns(BackendFallbackWarning):
                assert list(client.map_ordered(square, [1, 2])) == [1, 4]


class TestClientContract:
    def test_capability_flags(self):
        assert NativeClient.capabilities == Capabilities(
            parallel=False, remote=False, streaming=True
        )
        assert MultiprocessingClient.capabilities == Capabilities(
            parallel=True, remote=False, streaming=False
        )
        assert DistributedClient.capabilities == Capabilities(
            parallel=True, remote=True, streaming=False
        )

    def test_submit_gather_ordered(self):
        with NativeClient() as client:
            a = client.submit(square, [1, 2, 3])
            b = client.submit(square, [4, 5])
            assert (a.batch_id, b.batch_id) == (0, 1)
            assert client.gather(b) == [16, 25]  # out-of-order gather is fine
            assert client.gather(a) == [1, 4, 9]

    def test_gather_is_single_use(self):
        with NativeClient() as client:
            handle = client.submit(square, [1])
            client.gather(handle)
            with pytest.raises(ValueError, match="already-gathered"):
                client.gather(handle)

    def test_closed_client_rejects_work(self):
        client = NativeClient()
        client.close()
        with pytest.raises(RuntimeError, match="closed"):
            next(client.map_ordered(square, [1]))
        with pytest.raises(RuntimeError, match="closed"):
            client.submit(square, [1])

    def test_close_is_idempotent(self):
        client = MultiprocessingClient(jobs=2)
        client.close()
        client.close()

    def test_native_streams_lazily(self):
        consumed = []

        def gen():
            for x in range(4):
                consumed.append(x)
                yield x

        with NativeClient() as client:
            out = client.map_ordered(square, gen())
            assert consumed == []
            assert next(out) == 0
            assert consumed == [0]
            assert list(out) == [1, 4, 9]

    def test_distributed_stub_raises(self):
        with DistributedClient() as client:
            with pytest.raises(BackendUnavailable, match="wire-contract stub"):
                next(client.map_ordered(square, [1, 2]))
            with pytest.raises(BackendUnavailable):
                client.submit(square, [1])

    def test_task_exception_propagates(self):
        def boom(x):
            raise RuntimeError(f"task {x}")

        with NativeClient() as client:
            with pytest.raises(RuntimeError, match="task 1"):
                list(client.map_ordered(boom, [1, 2]))


class TestParallelMapShim:
    def test_backend_param_forwarded(self, clean_env):
        out = list(parallel_map(square, range(10), backend="multiprocessing", jobs=2))
        assert out == [x * x for x in range(10)]

    def test_explicit_native_ignores_job_count(self, clean_env):
        out = list(parallel_map(square, range(10), backend="native", jobs=8))
        assert out == [x * x for x in range(10)]

    def test_unknown_backend_raises_before_running(self, clean_env):
        with pytest.raises(ValueError, match="unknown backend"):
            list(parallel_map(square, [1], backend="bogus"))
