"""Tests for the deterministic event queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.eventqueue import EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        for name in "abcde":
            q.push(1.0, name)
        assert [q.pop().payload for _ in range(5)] == list("abcde")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1

    def test_drain_until(self):
        q = EventQueue()
        for t in (0.5, 1.5, 2.5, 3.5):
            q.push(t, t)
        drained = [ev.payload for ev in q.drain_until(2.5)]
        assert drained == [0.5, 1.5, 2.5]
        assert len(q) == 1

    def test_push_during_drain(self):
        """Events scheduled by handlers inside the horizon are seen."""
        q = EventQueue()
        q.push(1.0, "first")
        seen = []
        for ev in q.drain_until(10.0):
            seen.append(ev.payload)
            if ev.payload == "first":
                q.push(2.0, "chained")
        assert seen == ["first", "chained"]

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_always_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, t)
        out = [q.pop().time for _ in range(len(times))]
        assert out == sorted(out)
