"""Tests for the parallel run executor."""

import numpy as np
import pytest

from repro.simulation.parallel import default_jobs, parallel_map


def square(x: int) -> int:
    return x * x


@pytest.fixture(autouse=True)
def _default_selection_rules(monkeypatch):
    """These tests pin the *default* selection rules (jobs-derived
    backend, serial laziness), so an outer ``REPRO_BACKEND`` override —
    e.g. CI's multiprocessing smoke job — must not leak in."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


class TestParallelMap:
    def test_serial_path(self):
        assert list(parallel_map(square, [1, 2, 3], jobs=1)) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        out = list(parallel_map(square, items, jobs=4))
        assert out == [x * x for x in items]

    def test_single_item_stays_inline(self):
        assert list(parallel_map(square, [7], jobs=8)) == [49]

    def test_empty(self):
        assert list(parallel_map(square, [], jobs=4)) == []

    def test_lazy_iterable_serial_stays_lazy(self):
        consumed = []

        def gen():
            for x in range(5):
                consumed.append(x)
                yield x

        out = parallel_map(square, gen(), jobs=1)
        assert consumed == []  # nothing pulled before iteration
        assert next(out) == 0
        assert consumed == [0]  # one item pulled, none buffered ahead
        assert list(out) == [1, 4, 9, 16]

    def test_lazy_iterable_parallel_materialises(self):
        out = list(parallel_map(square, (x for x in range(20)), jobs=4))
        assert out == [x * x for x in range(20)]

    def test_auto_chunksize_formula(self):
        # 40 items / (4 * 2 jobs) = 5; floored at 1 for tiny inputs
        assert max(1, 40 // (4 * 2)) == 5
        assert max(1, 3 // (4 * 8)) == 1
        # behavioural check: auto chunking preserves order and results
        items = list(range(40))
        assert list(parallel_map(square, items, jobs=2)) == [
            x * x for x in items
        ]


class TestDefaultJobs:
    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() >= 1


class TestExperimentDeterminism:
    def test_quality_experiment_serial_equals_parallel(self):
        from repro.experiments.config import QualityConfig
        from repro.experiments.runner import quality_experiment

        cfg = QualityConfig(n=8, steps=60, runs=3, seed=4, snapshot_ticks=(30,))
        a = quality_experiment(cfg, jobs=1)
        b = quality_experiment(cfg, jobs=2)
        assert np.array_equal(a.envelope.mean, b.envelope.mean)
        assert np.array_equal(a.envelope.mean_spread, b.envelope.mean_spread)
        assert a.mean_ops == b.mean_ops
        assert [c.as_dict() for c in a.counters] == [
            c.as_dict() for c in b.counters
        ]


class TestCrossProcessMetrics:
    """Worker registries must merge identically for any jobs setting."""

    def test_serial_and_parallel_merges_agree(self):
        from repro.experiments.config import QualityConfig
        from repro.experiments.runner import quality_experiment

        cfg = QualityConfig(n=8, steps=60, runs=3, seed=4, snapshot_ticks=())
        a = quality_experiment(cfg, jobs=1, collect_metrics=True)
        b = quality_experiment(cfg, jobs=2, collect_metrics=True)
        assert a.metrics is not None and b.metrics is not None
        pa, pb = a.metrics.as_dict(), b.metrics.as_dict()
        # counters and histograms are additive, hence order-independent
        assert pa["counters"] == pb["counters"]
        assert pa["histograms"] == pb["histograms"]
        assert set(pa["gauges"]) == set(pb["gauges"])

    def test_merged_counters_cover_all_runs(self):
        from repro.experiments.config import QualityConfig
        from repro.experiments.runner import quality_experiment

        cfg = QualityConfig(n=8, steps=60, runs=3, seed=4, snapshot_ticks=())
        res = quality_experiment(cfg, jobs=2, collect_metrics=True)
        assert res.metrics.counter("sim.ticks").value == cfg.runs * cfg.steps
        # engine.balance_ops aggregates every run's operations
        assert res.metrics.counter("engine.balance_ops").value == pytest.approx(
            res.mean_ops * cfg.runs
        )

    def test_metrics_off_by_default(self):
        from repro.experiments.config import QualityConfig
        from repro.experiments.runner import quality_experiment

        cfg = QualityConfig(n=8, steps=40, runs=2, seed=1, snapshot_ticks=())
        assert quality_experiment(cfg, jobs=1).metrics is None
