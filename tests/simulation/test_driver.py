"""Tests for the simulation driver and result containers."""

import numpy as np
import pytest

from repro import LBParams, RunResult, Simulation, run_simulation
from repro.baselines import NoBalance
from repro.workload import ConstantWorkload, UniformRandom


class TestSimulation:
    def test_tick_advances_and_snapshots(self, rng):
        sim = Simulation(
            NoBalance(3, rng=0), ConstantWorkload([1, 0, 0]), workload_rng=rng
        )
        sim.tick()
        sim.tick()
        assert sim.t == 2
        assert len(sim.snapshots) == 3
        assert sim.snapshots[-1].tolist() == [2, 0, 0]

    def test_run_returns_history(self, rng):
        sim = Simulation(
            NoBalance(2, rng=0), ConstantWorkload([1, 1]), workload_rng=rng
        )
        hist = sim.run(5)
        assert hist.shape == (6, 2)
        assert hist[-1].tolist() == [5, 5]

    def test_n_mismatch(self, rng):
        with pytest.raises(ValueError):
            Simulation(NoBalance(2, rng=0), ConstantWorkload([1]), workload_rng=rng)


class TestRunSimulation:
    def test_reproducible(self):
        a = run_simulation(8, LBParams(), UniformRandom(8, 0.5, 0.3), 40, seed=9)
        b = run_simulation(8, LBParams(), UniformRandom(8, 0.5, 0.3), 40, seed=9)
        assert np.array_equal(a.loads, b.loads)
        assert a.total_ops == b.total_ops

    def test_different_seeds_differ(self):
        a = run_simulation(8, LBParams(), UniformRandom(8, 0.5, 0.3), 40, seed=1)
        b = run_simulation(8, LBParams(), UniformRandom(8, 0.5, 0.3), 40, seed=2)
        assert not np.array_equal(a.loads, b.loads)

    def test_meta_populated(self):
        res = run_simulation(
            4, LBParams(f=1.2), UniformRandom(4, 0.5, 0.5), 5, seed=0,
            meta={"tag": "x"},
        )
        assert res.meta["f"] == 1.2
        assert res.meta["workload"] == "UniformRandom"
        assert res.meta["tag"] == "x"

    def test_strict_trigger_mode_runs(self):
        res = run_simulation(
            4, LBParams(f=1.5), UniformRandom(4, 0.6, 0.2), 20, seed=0,
            strict_trigger=True,
        )
        # strict mode balances continuously at zero load — many more ops
        assert res.total_ops > 0


class TestRunResult:
    def _result(self) -> RunResult:
        return run_simulation(4, LBParams(), UniformRandom(4, 0.8, 0.1), 30, seed=3)

    def test_series_properties(self):
        r = self._result()
        assert r.n == 4
        assert r.steps == 30
        assert r.mean_load.shape == (31,)
        assert (r.min_load <= r.mean_load).all()
        assert (r.mean_load <= r.max_load).all()

    def test_imbalance_finite_and_ge_one(self):
        r = self._result()
        imb = r.imbalance()
        assert np.isfinite(imb).all()
        assert (imb >= 1.0 - 1e-9).all()

    def test_final_spread(self):
        r = self._result()
        assert r.final_spread() == int(r.loads[-1].max() - r.loads[-1].min())
