"""Tests for the workload protocol and the shared action sampler."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload.base import ConstantWorkload, WorkloadModel, sample_actions


class TestConstantWorkload:
    def test_returns_vector(self, rng):
        w = ConstantWorkload([1, 0, -1])
        a = w.actions(0, np.array([5, 5, 5]), rng)
        assert a.tolist() == [1, 0, -1]

    def test_copy_not_alias(self, rng):
        w = ConstantWorkload([1, 0])
        a = w.actions(0, np.zeros(2), rng)
        a[0] = -1
        assert w.vector[0] == 1

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ConstantWorkload([2, 0])

    def test_protocol_conformance(self):
        assert isinstance(ConstantWorkload([0]), WorkloadModel)


class TestSampleActions:
    def test_prob_one_generates(self, rng):
        g = np.ones(10)
        c = np.zeros(10)
        a = sample_actions(g, c, np.zeros(10), rng)
        assert (a == 1).all()

    def test_prob_one_consumes_when_loaded(self, rng):
        g = np.zeros(10)
        c = np.ones(10)
        a = sample_actions(g, c, np.full(10, 3), rng)
        assert (a == -1).all()

    def test_consume_needs_load(self, rng):
        a = sample_actions(np.zeros(5), np.ones(5), np.zeros(5), rng)
        assert (a == 0).all()

    def test_both_one_splits_evenly(self):
        """g = c = 1: the coin picks ~half generate, half consume."""
        rng = np.random.default_rng(0)
        n = 20_000
        a = sample_actions(np.ones(n), np.ones(n), np.full(n, 5), rng)
        frac_gen = (a == 1).mean()
        assert 0.47 < frac_gen < 0.53
        assert ((a == 1) | (a == -1)).all()

    @given(
        g=st.floats(0, 1),
        c=st.floats(0, 1),
        seed=st.integers(0, 100),
    )
    def test_marginal_rates(self, g, c, seed):
        """Empirical action rates respect the independent-event model:
        P(gen) = g(1 - c/2) etc. — checked loosely."""
        rng = np.random.default_rng(seed)
        n = 4000
        a = sample_actions(
            np.full(n, g), np.full(n, c), np.full(n, 10), rng
        )
        expect_gen = g * (1 - c / 2)
        assert abs((a == 1).mean() - expect_gen) < 0.06
