"""Tests for the structured workload patterns."""

import numpy as np
import pytest

from repro.workload.patterns import (
    AdversarialFlipFlop,
    BurstyHotspot,
    OneProducer,
    ProducerConsumerSplit,
    UniformRandom,
)


class TestOneProducer:
    def test_only_proc0_generates(self, rng):
        w = OneProducer(8, gen=1.0)
        for t in range(20):
            a = w.actions(t, np.zeros(8), rng)
            assert a[0] == 1
            assert (a[1:] <= 0).all()

    def test_consumers(self, rng):
        w = OneProducer(8, gen=1.0, consume=1.0)
        a = w.actions(0, np.full(8, 5), rng)
        assert a[0] == 1
        assert (a[1:] == -1).all()


class TestProducerConsumerSplit:
    def test_split_sides(self, rng):
        w = ProducerConsumerSplit(10, k=4, gen=1.0, consume=1.0)
        a = w.actions(0, np.full(10, 3), rng)
        assert (a[:4] == 1).all()
        assert (a[4:] == -1).all()

    def test_default_half(self):
        w = ProducerConsumerSplit(10)
        assert (w.g[:5] > 0).all() and (w.g[5:] == 0).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ProducerConsumerSplit(4, k=4)


class TestUniformRandom:
    def test_rates(self):
        rng = np.random.default_rng(0)
        w = UniformRandom(1000, gen=0.5, consume=0.0)
        a = w.actions(0, np.zeros(1000), rng)
        assert 0.4 < (a == 1).mean() < 0.6


class TestBurstyHotspot:
    def test_single_generator_per_tick(self, rng):
        w = BurstyHotspot(8, period=10, consume=0.0)
        for t in range(30):
            a = w.actions(t, np.zeros(8), rng)
            assert (a == 1).sum() == 1

    def test_hotspot_moves(self):
        rng = np.random.default_rng(2)
        w = BurstyHotspot(32, period=5, consume=0.0)
        spots = set()
        for t in range(50):
            a = w.actions(t, np.zeros(32), rng)
            spots.add(int(np.argmax(a)))
        assert len(spots) > 3

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            BurstyHotspot(8, period=0)


class TestAdversarialFlipFlop:
    def test_counter_phase(self, rng):
        w = AdversarialFlipFlop(4, half_period=10, rate=1.0)
        a0 = w.actions(0, np.full(4, 5), rng)
        assert a0[0] == 1 and a0[2] == 1  # even generate in phase A
        assert a0[1] == -1 and a0[3] == -1
        a1 = w.actions(10, np.full(4, 5), rng)  # phase B
        assert a1[0] == -1 and a1[1] == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            AdversarialFlipFlop(4, half_period=0)
