"""Tests for the Markov-modulated workload."""

import numpy as np
import pytest

from repro.workload.markov import MarkovModulated


class TestMarkovModulated:
    def test_action_values(self, rng):
        w = MarkovModulated(8)
        for t in range(50):
            a = w.actions(t, np.full(8, 5), rng)
            assert np.isin(a, (-1, 0, 1)).all()

    def test_states_flip_over_time(self):
        rng = np.random.default_rng(0)
        w = MarkovModulated(4, mean_burst=5, mean_quiet=5)
        initial = w.bursting.copy()
        flipped = False
        for t in range(100):
            w.actions(t, np.zeros(4), rng)
            if not np.array_equal(w.bursting, initial):
                flipped = True
                break
        assert flipped

    def test_sojourn_lengths_geometric(self):
        """Mean burst length matches the configured sojourn mean."""
        rng = np.random.default_rng(1)
        w = MarkovModulated(1, mean_burst=20, mean_quiet=20, start_bursting=1.0)
        lengths = []
        current = 0
        for t in range(40_000):
            w.actions(t, np.zeros(1), rng)
            if w.bursting[0]:
                current += 1
            elif current:
                lengths.append(current)
                current = 0
        assert np.mean(lengths) == pytest.approx(20, rel=0.15)

    def test_stationary_fraction(self):
        w = MarkovModulated(1, mean_burst=30, mean_quiet=90)
        assert w.stationary_burst_fraction == pytest.approx(0.25)

    def test_burst_generates_more(self):
        rng = np.random.default_rng(2)
        # pin states by making transitions impossible in the horizon
        w = MarkovModulated(
            2000,
            mean_burst=1e9,
            mean_quiet=1e9,
            start_bursting=0.5,
            burst_rates=(0.9, 0.0),
            quiet_rates=(0.05, 0.0),
        )
        a = w.actions(0, np.zeros(2000), rng)
        bursting_rate = a[w.bursting].mean()
        quiet_rate = a[~w.bursting].mean()
        assert bursting_rate > 5 * quiet_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulated(0)
        with pytest.raises(ValueError):
            MarkovModulated(4, mean_burst=0.5)
        with pytest.raises(ValueError):
            MarkovModulated(4, start_bursting=1.5)
        with pytest.raises(ValueError):
            MarkovModulated(4, burst_rates=(1.5, 0.0))

    def test_drives_engine(self):
        from repro import LBParams, run_simulation

        res = run_simulation(
            8, LBParams(f=1.2, delta=1, C=4), MarkovModulated(8), 100, seed=0
        )
        assert res.steps == 100
