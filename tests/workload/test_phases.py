"""Tests for the section-7 phase workloads."""

import numpy as np
import pytest

from repro.workload.phases import PhaseSpec, PhaseWorkload, Section7Workload


class TestPhaseSpec:
    def test_valid(self):
        p = PhaseSpec(g=0.5, c=0.3, start=0, end=10)
        assert p.g == 0.5

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            PhaseSpec(g=1.5, c=0.0, start=0, end=1)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            PhaseSpec(g=0.5, c=0.5, start=5, end=4)


class TestPhaseWorkload:
    def test_active_phase_generates(self, rng):
        w = PhaseWorkload([[PhaseSpec(1.0, 0.0, 0, 100)]])
        a = w.actions(50, np.zeros(1), rng)
        assert a[0] == 1

    def test_outside_phase_idle(self, rng):
        w = PhaseWorkload([[PhaseSpec(1.0, 1.0, 10, 20)]])
        a = w.actions(5, np.full(1, 9), rng)
        assert a[0] == 0

    def test_inclusive_bounds(self, rng):
        w = PhaseWorkload([[PhaseSpec(1.0, 0.0, 10, 20)]])
        assert w.actions(10, np.zeros(1), rng)[0] == 1
        assert w.actions(20, np.zeros(1), rng)[0] == 1
        assert w.actions(21, np.zeros(1), rng)[0] == 0

    def test_first_matching_phase_wins(self, rng):
        w = PhaseWorkload(
            [[PhaseSpec(1.0, 0.0, 0, 50), PhaseSpec(0.0, 1.0, 40, 60)]]
        )
        assert w.actions(45, np.full(1, 5), rng)[0] == 1


class TestSection7:
    def test_layout_covers_horizon(self):
        w = Section7Workload(8, 300, layout_rng=0)
        g, c = w.phase_tables
        assert g.shape == (300, 8)
        assert (g >= 0.1).all() and (g <= 0.9).all()
        assert (c >= 0.1).all() and (c <= 0.7).all()

    def test_phase_lengths_in_range(self):
        """Phase boundaries occur only at multiples within [len_l, len_h]
        (boundary changes in the g table)."""
        w = Section7Workload(4, 2000, len_range=(150, 400), layout_rng=1)
        g, _ = w.phase_tables
        for i in range(4):
            col = g[:, i]
            changes = np.nonzero(np.diff(col) != 0)[0] + 1
            boundaries = [0, *changes.tolist()]
            for a, b in zip(boundaries, boundaries[1:]):
                assert 150 <= b - a <= 400

    def test_lazy_layout_from_actions_rng(self):
        w = Section7Workload(4, 100)
        rng = np.random.default_rng(0)
        w.actions(0, np.zeros(4), rng)
        assert w.phase_tables[0].shape == (100, 4)

    def test_phase_tables_before_layout_raises(self):
        with pytest.raises(RuntimeError):
            Section7Workload(4, 100).phase_tables

    def test_beyond_horizon_idle(self, rng):
        w = Section7Workload(4, 50, layout_rng=2)
        a = w.actions(50, np.full(4, 5), rng)
        assert (a == 0).all()

    def test_reproducible_layout(self):
        a = Section7Workload(4, 100, layout_rng=3).phase_tables[0]
        b = Section7Workload(4, 100, layout_rng=3).phase_tables[0]
        assert np.array_equal(a, b)

    def test_paper_defaults(self):
        w = Section7Workload()
        assert w.n == 64 and w.horizon == 500
        assert w.g_range == (0.1, 0.9)
        assert w.c_range == (0.1, 0.7)
        assert w.len_range == (150, 400)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Section7Workload(0, 10)
        with pytest.raises(ValueError):
            Section7Workload(4, 10, len_range=(0, 5))
