"""Tests for workload trace record / replay."""

import numpy as np
import pytest

from repro.workload.base import ConstantWorkload
from repro.workload.patterns import UniformRandom
from repro.workload.trace import RecordedWorkload, TraceRecorder


class TestRecorder:
    def test_records_all_ticks(self, rng):
        rec = TraceRecorder(ConstantWorkload([1, 0, -1]))
        for t in range(5):
            rec.actions(t, np.full(3, 2), rng)
        trace = rec.trace()
        assert trace.horizon == 5
        assert trace.matrix.shape == (5, 3)

    def test_passthrough(self, rng):
        inner = ConstantWorkload([1, -1])
        rec = TraceRecorder(inner)
        a = rec.actions(0, np.full(2, 3), rng)
        assert a.tolist() == [1, -1]


class TestReplay:
    def test_bit_exact_replay(self):
        rng1 = np.random.default_rng(0)
        rec = TraceRecorder(UniformRandom(6, 0.5, 0.5))
        loads = np.full(6, 10)
        originals = [rec.actions(t, loads, rng1).copy() for t in range(20)]
        trace = rec.trace()
        rng2 = np.random.default_rng(999)  # replay ignores rng
        for t, orig in enumerate(originals):
            replayed = trace.actions(t, loads, rng2)
            assert np.array_equal(replayed, orig)

    def test_consume_degrades_on_empty(self, rng):
        trace = RecordedWorkload(np.array([[-1, 1]]))
        a = trace.actions(0, np.array([0, 0]), rng)
        assert a.tolist() == [0, 1]

    def test_beyond_horizon_idle(self, rng):
        trace = RecordedWorkload(np.array([[1, 1]]))
        assert trace.actions(5, np.zeros(2), rng).tolist() == [0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RecordedWorkload(np.array([1, 0]))  # 1-D
        with pytest.raises(ValueError):
            RecordedWorkload(np.array([[2, 0]]))  # bad value

    def test_cross_balancer_fairness(self):
        """The same trace drives two balancers with identical
        generation totals — the property comparisons rely on."""
        from repro.baselines import NoBalance, RandomScatter, run_baseline

        rec = TraceRecorder(UniformRandom(8, 0.6, 0.0))
        res1 = run_baseline(NoBalance(8, rng=1), rec, 30, seed=5)
        trace = rec.trace()
        res2 = run_baseline(RandomScatter(8, rng=2), trace, 30, seed=6)
        assert res1.loads[-1].sum() == res2.loads[-1].sum()


class TestArrivalTrace:
    def make(self):
        from repro.service.traffic import PoissonTraffic
        from repro.workload.trace import ArrivalTrace

        arrivals = PoissonTraffic(6, 2.0, seed=4).arrivals(20.0)
        return ArrivalTrace.from_arrivals(6, arrivals), arrivals

    def test_from_arrivals_preserves_rows(self):
        trace, arrivals = self.make()
        assert len(trace) == len(arrivals)
        for row, a in zip(trace.rows(), arrivals):
            assert row == (a.time, a.targets[0], a.targets[1], a.critical)

    def test_json_round_trip(self, tmp_path):
        from repro.workload.trace import ArrivalTrace

        trace, _ = self.make()
        path = tmp_path / "sub" / "offered.json"
        trace.to_json(path)          # creates the parent directory
        back = ArrivalTrace.from_json(path)
        assert back.n == trace.n
        assert list(back.rows()) == list(trace.rows())

    def test_rejects_wrong_schema(self, tmp_path):
        import json

        from repro.workload.trace import ArrivalTrace

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="expected schema"):
            ArrivalTrace.from_json(path)

    def test_validation(self):
        from repro.workload.trace import ArrivalTrace

        with pytest.raises(ValueError, match="non-decreasing"):
            ArrivalTrace(4, [2.0, 1.0], [0, 0], [1, 1], [True, True])
        with pytest.raises(ValueError, match="equal-length"):
            ArrivalTrace(4, [1.0], [0, 0], [1, 1], [True, True])
        with pytest.raises(ValueError, match="outside n="):
            ArrivalTrace(4, [1.0], [7], [1], [True])

    def test_empty_trace_is_fine(self):
        from repro.workload.trace import ArrivalTrace

        trace = ArrivalTrace(4, [], [], [], [])
        assert len(trace) == 0
        assert list(trace.rows()) == []
