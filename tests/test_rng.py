"""Tests for repro.rng — reproducibility contracts."""

import numpy as np

from repro.rng import RngFactory, make_rng, spawn_streams


class TestMakeRng:
    def test_int_seed_reproducible(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(0, 7)) == 7

    def test_streams_differ(self):
        s = spawn_streams(0, 3)
        draws = [g.random(4).tolist() for g in s]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible(self):
        a = [g.random(3).tolist() for g in spawn_streams(5, 2)]
        b = [g.random(3).tolist() for g in spawn_streams(5, 2)]
        assert a == b


class TestRngFactory:
    def test_named_order_independent(self):
        f1 = RngFactory(9)
        x = f1.named("workload").random(4)
        y = f1.named("engine").random(4)

        f2 = RngFactory(9)
        y2 = f2.named("engine").random(4)
        x2 = f2.named("workload").random(4)
        assert np.array_equal(x, x2)
        assert np.array_equal(y, y2)

    def test_named_distinct_keys_distinct_streams(self):
        f = RngFactory(0)
        assert not np.array_equal(f.named("a").random(8), f.named("b").random(8))

    def test_named_mixed_key_types(self):
        f = RngFactory(0)
        a = f.named("run", 3).random(4)
        b = f.named("run", 4).random(4)
        assert not np.array_equal(a, b)

    def test_anonymous_streams_advance(self):
        f = RngFactory(0)
        assert not np.array_equal(f.stream().random(4), f.stream().random(4))

    def test_child_factory_isolated(self):
        f = RngFactory(1)
        c1 = f.child_factory("run", 0)
        c2 = f.child_factory("run", 1)
        assert not np.array_equal(
            c1.named("engine").random(4), c2.named("engine").random(4)
        )

    def test_child_factory_reproducible(self):
        a = RngFactory(1).child_factory("run", 5).named("x").random(4)
        b = RngFactory(1).child_factory("run", 5).named("x").random(4)
        assert np.array_equal(a, b)

    def test_run_streams_count_and_determinism(self):
        runs1 = [f.named("w").random(2).tolist() for f in RngFactory(2).run_streams(4)]
        runs2 = [f.named("w").random(2).tolist() for f in RngFactory(2).run_streams(4)]
        assert len(runs1) == 4
        assert runs1 == runs2
        assert len({tuple(r) for r in runs1}) == 4  # all distinct

    def test_string_folding_stable_across_instances(self):
        # named() must not rely on salted hash(): two separate processes
        # (simulated by two factories) agree on the stream for a string key
        a = RngFactory(3).named("stable-key").integers(0, 1 << 30, 4)
        b = RngFactory(3).named("stable-key").integers(0, 1 << 30, 4)
        assert np.array_equal(a, b)
