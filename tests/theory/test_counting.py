"""Tests for the computation-graph counts n(t,u) and n(t,u,i)."""

import itertools
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.theory.counting import n_computations, n_computations_bow


def brute_force_n(t: int, u: int) -> int:
    """Sequences over alphabet [u] using all u symbols."""
    return sum(
        1 for seq in itertools.product(range(u), repeat=t) if len(set(seq)) == u
    )


def brute_force_bow(t: int, u: int, i: int) -> int:
    count = 0
    for seq in itertools.product(range(u), repeat=t):
        if len(set(seq)) != u:
            continue
        last = seq[-1]
        prev = 0
        for pos in range(t - 1, 0, -1):  # steps t-1 .. 1 (1-based)
            if seq[pos - 1] == last:
                prev = pos
                break
        if prev == i:
            count += 1
    return count


class TestNComputations:
    def test_base_cases(self):
        assert n_computations(0, 0) == 1
        assert n_computations(3, 0) == 0
        assert n_computations(3, 4) == 0
        assert n_computations(1, 1) == 1

    def test_footnote_examples(self):
        assert n_computations(3, 2) == 6  # 2^3 - 2
        assert n_computations(2, 2) == 2

    @pytest.mark.parametrize("t", range(1, 7))
    @pytest.mark.parametrize("u", range(1, 7))
    def test_against_brute_force(self, t, u):
        assert n_computations(t, u) == brute_force_n(t, u)

    def test_equals_surjection_formula(self):
        """n(t,u) = u! * S(t,u) (Stirling), via inclusion-exclusion."""
        for t in range(1, 9):
            for u in range(1, t + 1):
                sieve = sum(
                    (-1) ** (u - j) * math.comb(u, j) * j**t
                    for j in range(u + 1)
                )
                assert n_computations(t, u) == sieve

    @given(st.integers(1, 30))
    def test_partition_of_total(self, t):
        """sum over u of n(t,u) * binom(m,u) = m^t for any alphabet m >= t."""
        m = t + 3
        total = sum(
            n_computations(t, u) * math.comb(m, u) for u in range(1, t + 1)
        )
        assert total == m**t


class TestBowCounts:
    @pytest.mark.parametrize("t", range(1, 6))
    @pytest.mark.parametrize("u", range(1, 6))
    def test_against_brute_force(self, t, u):
        if u > t:
            return
        for i in range(t):
            assert n_computations_bow(t, u, i) == brute_force_bow(t, u, i)

    @pytest.mark.parametrize("t,u", [(4, 2), (5, 3), (6, 4), (7, 3)])
    def test_bow_counts_partition(self, t, u):
        """Every sequence has exactly one last-use index: the bow
        counts partition n(t, u)."""
        assert sum(
            n_computations_bow(t, u, i) for i in range(t)
        ) == n_computations(t, u)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            n_computations_bow(3, 2, 3)
        with pytest.raises(ValueError):
            n_computations_bow(3, 2, -1)

    def test_out_of_range_u(self):
        assert n_computations_bow(3, 5, 0) == 0
