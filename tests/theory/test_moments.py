"""Tests for the exact O(t) moment recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.fixpoint import fix, iterate_G
from repro.theory.moments import MomentState, exact_moments
from repro.theory.variation import exact_variation_density, mc_variation_density

params = st.tuples(
    st.integers(3, 100),
    st.integers(1, 6),
    st.floats(1.0, 3.0),
).filter(lambda t: t[1] < t[0])


class TestAgainstLemma1:
    @given(params)
    @settings(max_examples=40)
    def test_mean_ratio_is_G_iteration(self, ndf):
        """The first-moment shadow of the recursion IS Lemma 1."""
        n, d, f = ndf
        res = exact_moments(15, n, f, delta=d)
        ratio = res.e_producer / res.e_other
        theory = np.asarray(iterate_G(n, d, f, 15))
        assert np.allclose(ratio, theory, rtol=1e-12)

    def test_ratio_converges_to_fix(self):
        res = exact_moments(3000, 32, 1.6, delta=2)
        assert res.e_producer[-1] / res.e_other[-1] == pytest.approx(
            fix(32, 2, 1.6), rel=1e-9
        )


class TestAgainstEnumeration:
    @pytest.mark.parametrize("n,f", [(3, 1.2), (5, 1.3), (8, 1.7), (4, 1.0)])
    def test_delta1_matches_exhaustive(self, n, f):
        t = 6
        en = exact_variation_density(t, n, f)
        mo = exact_moments(t, n, f, delta=1)
        assert np.allclose(en.e_producer, mo.e_producer, rtol=1e-12)
        assert np.allclose(en.e2_producer, mo.e2_producer, rtol=1e-12)
        assert np.allclose(en.e_other, mo.e_other, rtol=1e-12)
        assert np.allclose(en.e2_other, mo.e2_other, rtol=1e-12)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("delta", [2, 3])
    def test_subset_mode_matches_mc(self, delta):
        n, f, t = 9, 1.25, 12
        mc = mc_variation_density(
            t, n, f, delta=delta, mode="exact", trials=150_000, seed=1
        )
        mo = exact_moments(t, n, f, delta=delta)
        assert np.allclose(mc.e_producer, mo.e_producer, rtol=0.01)
        assert np.allclose(mc.vd_other[1:], mo.vd_other[1:], atol=0.01)


class TestProperties:
    def test_f_one_stays_deterministic(self):
        res = exact_moments(30, 10, 1.0, delta=1)
        assert np.allclose(res.vd_producer, 0.0, atol=1e-12)
        assert np.allclose(res.vd_other, 0.0, atol=1e-12)

    def test_n2_deterministic(self):
        res = exact_moments(10, 2, 1.5, delta=1)
        assert np.allclose(res.vd_producer, 0.0, atol=1e-9)

    @given(params)
    @settings(max_examples=40)
    def test_variance_nonnegative(self, ndf):
        """Cauchy-Schwarz sanity: E[x^2] >= E[x]^2 at every step."""
        n, d, f = ndf
        res = exact_moments(25, n, f, delta=d)
        # relative tolerance: the moments grow geometrically, so an
        # absolute epsilon would be swamped by rounding at large t
        assert (
            res.e2_producer >= res.e_producer**2 * (1 - 1e-12) - 1e-9
        ).all()
        assert (res.e2_other >= res.e_other**2 * (1 - 1e-12) - 1e-9).all()

    def test_vd_decreases_with_delta(self):
        vds = [
            exact_moments(100, 20, 1.2, delta=d).vd_other[-1] for d in (1, 2, 4)
        ]
        assert vds[0] > vds[1] > vds[2]

    def test_vd_increases_with_f(self):
        a = exact_moments(100, 20, 1.1, delta=1).vd_other[-1]
        b = exact_moments(100, 20, 1.4, delta=1).vd_other[-1]
        assert b > a

    def test_vd_plateau_at_paper_scale(self):
        """Figure-6 convergence at the paper's horizon (t <= 150): VD
        changes by < 0.02 over the second half of the range."""
        vd = exact_moments(150, 20, 1.2, delta=1).vd_other
        assert abs(vd[150] - vd[75]) < 0.02

    def test_vd_slow_drift_beyond_paper_scale(self):
        """The exact recursion's finding (EXPERIMENTS.md): the pure-
        growth OPG VD is NOT asymptotically bounded — it drifts upward
        slowly beyond ~1e4 steps (log-load variance accumulation)."""
        s = MomentState.balanced()
        checkpoints = {}
        for t in range(1, 100_001):
            s = s.step(20, 1, 1.2).normalised()
            if t in (1000, 100_000):
                checkpoints[t] = s.vd_other
        assert checkpoints[100_000] > checkpoints[1000] * 1.5

    def test_normalised_preserves_invariants(self):
        s = MomentState.balanced().step(10, 1, 1.3).step(10, 1, 1.3)
        ns = s.normalised()
        assert ns.g == pytest.approx(1.0)
        assert ns.ratio == pytest.approx(s.ratio)
        assert ns.vd_other == pytest.approx(s.vd_other)
        assert ns.vd_producer == pytest.approx(s.vd_producer)

    def test_normalise_flag_matches_raw_vd(self):
        raw = exact_moments(80, 12, 1.3, delta=2)
        norm = exact_moments(80, 12, 1.3, delta=2, normalise=True)
        assert np.allclose(raw.vd_other, norm.vd_other, rtol=1e-9)
        assert np.allclose(raw.vd_producer, norm.vd_producer, rtol=1e-9)

    def test_balanced_state_factory(self):
        s = MomentState.balanced(3.0)
        assert s.a == 9.0 and s.e == 3.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            exact_moments(5, 1, 1.1)
        with pytest.raises(ValueError):
            exact_moments(5, 4, 1.1, delta=4)
        with pytest.raises(ValueError):
            exact_moments(5, 4, 0.0)
