"""Tests for the section-5 variation density machinery."""

import numpy as np
import pytest

from repro.theory.fixpoint import fix
from repro.theory.variation import (
    exact_variation_density,
    mc_variation_density,
    simulate_candidate_sequence,
)


class TestCandidateSequence:
    def test_figure2_example_recurrence(self):
        """v_t = 1/2 v_i + f/2 v_{t-1} with i = last use of candidate."""
        f = 1.3
        seq = (2, 4, 3, 3, 4, 2, 2)  # the paper's example (the -3 is a typo)
        hist = simulate_candidate_sequence(seq, f, n=6)
        v = hist[:, 0]
        last_use = {}
        for t, cand in enumerate(seq, start=1):
            i = last_use.get(cand, 0)
            expected = 0.5 * v[i] + (f / 2) * v[t - 1]
            assert v[t] == pytest.approx(expected)
            last_use[cand] = t

    def test_candidate_shares_value(self):
        hist = simulate_candidate_sequence([3], 1.5, n=4)
        assert hist[1, 0] == hist[1, 2]  # processor 1 and candidate 3 equal
        assert hist[1, 1] == 1.0 and hist[1, 3] == 1.0  # untouched

    def test_out_of_range_candidate(self):
        with pytest.raises(ValueError):
            simulate_candidate_sequence([7], 1.1, n=4)

    def test_mass_conservation_with_growth(self):
        """Each step adds (f-1) * v_{t-1} to the total mass."""
        f = 1.2
        hist = simulate_candidate_sequence([2, 3, 2], f, n=4)
        for t in range(1, hist.shape[0]):
            expect = hist[t - 1].sum() + (f - 1) * hist[t - 1, 0]
            assert hist[t].sum() == pytest.approx(expect)


class TestExactEnumeration:
    def test_f_one_no_variance_in_expectation_growth(self):
        """f = 1: loads stay 1 forever, VD = 0."""
        res = exact_variation_density(4, 5, 1.0)
        assert np.allclose(res.e_producer, 1.0)
        assert np.allclose(res.vd_producer, 0.0)
        assert np.allclose(res.vd_other, 0.0)

    def test_n2_deterministic(self):
        """n = 2: only one candidate, the process is deterministic,
        so the variance vanishes although loads grow."""
        res = exact_variation_density(6, 2, 1.4)
        assert np.allclose(res.vd_producer, 0.0, atol=1e-12)
        assert np.allclose(res.vd_other, 0.0, atol=1e-12)
        assert res.e_producer[-1] > 1.0

    def test_expected_producer_matches_operator(self):
        """E(producer)/E(other) from the enumeration equals G^t(1)."""
        from repro.theory.fixpoint import iterate_G

        n, f, t = 5, 1.3, 6
        res = exact_variation_density(t, n, f)
        ratio = res.e_producer / res.e_other
        theory = iterate_G(n, 1, f, t)
        assert np.allclose(ratio, theory, rtol=1e-10)

    def test_mean_growth_identity(self):
        """E(total mass) grows by (f-1) E(producer) per step."""
        n, f, t = 4, 1.25, 5
        res = exact_variation_density(t, n, f)
        total = res.e_producer + (n - 1) * res.e_other
        for s in range(t):
            assert total[s + 1] == pytest.approx(
                total[s] + (f - 1) * res.e_producer[s]
            )

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            exact_variation_density(20, 5, 1.1)

    def test_exact_mode_delta_gt1_rejected(self):
        with pytest.raises(NotImplementedError):
            exact_variation_density(3, 5, 1.1, delta=2, mode="exact")


class TestMonteCarlo:
    def test_matches_exact_small(self):
        """MC estimator agrees with exhaustive enumeration."""
        n, f, t = 4, 1.3, 5
        exact = exact_variation_density(t, n, f)
        mc = mc_variation_density(t, n, f, trials=60_000, seed=0)
        assert np.allclose(mc.e_producer, exact.e_producer, rtol=0.02)
        assert np.allclose(mc.e_other, exact.e_other, rtol=0.02)
        assert np.allclose(
            mc.vd_producer[1:], exact.vd_producer[1:], atol=0.03
        )

    def test_matches_exact_relaxed_delta2(self):
        n, f, t, d = 5, 1.2, 3, 2
        exact = exact_variation_density(t, n, f, delta=d, mode="relaxed")
        mc = mc_variation_density(t, n, f, delta=d, mode="relaxed",
                                  trials=60_000, seed=1)
        assert np.allclose(mc.e_producer, exact.e_producer, rtol=0.02)
        assert np.allclose(mc.vd_other[1:], exact.vd_other[1:], atol=0.03)

    def test_vd_bounded_and_converging(self):
        """Figure-6 shape: VD small, converging in t."""
        res = mc_variation_density(100, 20, 1.1, delta=1, trials=20_000, seed=2)
        vd = res.vd_other
        assert vd.max() < 1.0
        tail = vd[60:]
        assert tail.std() < 0.05  # plateaued

    def test_vd_increases_with_f(self):
        a = mc_variation_density(60, 10, 1.1, trials=20_000, seed=3).vd_other[-1]
        b = mc_variation_density(60, 10, 1.6, trials=20_000, seed=3).vd_other[-1]
        assert b > a

    def test_ratio_tracks_fix(self):
        """Mean-field ratio converges to FIX (Theorem 1 via MC)."""
        n, d, f = 32, 2, 1.5
        res = mc_variation_density(120, n, f, delta=d, trials=40_000, seed=4)
        ratio = res.e_producer[-1] / res.e_other[-1]
        assert ratio == pytest.approx(fix(n, d, f), rel=0.02)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            mc_variation_density(10, 1, 1.1)
        with pytest.raises(ValueError):
            mc_variation_density(10, 4, 1.1, delta=4)

    def test_delta_subset_mode_distinct_candidates(self):
        """Exact mode with delta=3 must pick distinct partners: after
        one step exactly delta+1 processors share the merged value."""
        res = mc_variation_density(1, 8, 1.5, delta=3, trials=500, seed=5)
        # merged value = (f + 3) / 4 with all loads 1 initially
        merged = (1.5 + 3) / 4
        expect_producer = merged
        assert res.e_producer[1] == pytest.approx(expect_producer, rel=1e-12)
