"""Tests for the Theorem 3/4 bounds and the section-6 cost bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.theory.bounds import (
    CostBounds,
    D_factor,
    U_factor,
    decrease_steps_expected,
    lemma5_lower,
    lemma5_upper,
    lemma6_upper,
    theorem3_bounds,
    theorem4_bound,
)
from repro.theory.fixpoint import fix, fix_limit

provable = st.tuples(
    st.integers(3, 200),
    st.integers(1, 6),
    st.floats(1.01, 6.9),
).filter(lambda t: t[1] < t[0] and t[2] < t[1] + 1)


class TestTheorem3:
    def test_finite_n(self):
        lo, hi = theorem3_bounds(64, 1, 1.5)
        assert lo == pytest.approx(fix(64, 1, 1 / 1.5))
        assert hi == pytest.approx(fix(64, 1, 1.5))
        assert lo < 1 < hi

    def test_size_free(self):
        lo, hi = theorem3_bounds(None, 2, 1.5)
        assert lo == pytest.approx(2 / (3 - 1 / 1.5))
        assert hi == pytest.approx(2 / (3 - 1.5))

    @given(provable)
    def test_order(self, ndf):
        n, d, f = ndf
        lo, hi = theorem3_bounds(n, d, f)
        lo_inf, hi_inf = theorem3_bounds(None, d, f)
        assert lo_inf <= lo <= 1.0 + 1e-9
        assert 1.0 - 1e-9 <= hi <= hi_inf + 1e-9

    def test_domain_check(self):
        with pytest.raises(ValueError):
            theorem3_bounds(64, 1, 2.5)


class TestTheorem4:
    def test_limit_form(self):
        assert theorem4_bound(None, 1, 1.5) == pytest.approx(
            1.5**2 * fix_limit(1, 1.5)
        )

    def test_finite_forms_ordered(self):
        b_t = theorem4_bound(64, 1, 1.5, t=5)
        b_inf = theorem4_bound(64, 1, 1.5)
        b_free = theorem4_bound(None, 1, 1.5)
        assert b_t <= b_inf <= b_free

    def test_at_least_one(self):
        """f^2 G^t(1) >= 1 (used inside the Theorem-4 proof)."""
        for t in (0, 1, 10, None):
            assert theorem4_bound(64, 4, 1.1, t=t) >= 1.0


class TestCostFactors:
    @given(provable)
    def test_U_above_D(self, ndf):
        """Consumption fixed point gives the slower decrease: U >= D."""
        n, d, f = ndf
        assert U_factor(n, d, f) >= D_factor(n, d, f) - 1e-12

    @given(provable)
    def test_factors_positive(self, ndf):
        n, d, f = ndf
        assert D_factor(n, d, f) > 0
        assert U_factor(n, d, f) > 0

    def test_D_is_one_cycle_decrease(self):
        """D = (1/f + delta/FIX) / (delta+1): equalising l/f with
        delta partners holding l/FIX."""
        n, d, f = 64, 1, 1.1
        k = fix(n, d, f)
        assert D_factor(n, d, f) == pytest.approx((1 / f + d / k) / (d + 1))

    def test_f_one_factors(self):
        """At f = 1 both factors are exactly 1 (no decrease happens)."""
        assert D_factor(64, 1, 1.0) == pytest.approx(1.0)
        assert U_factor(64, 1, 1.0) == pytest.approx(1.0)


class TestLemma56:
    def test_bounds_bracket_expected_model(self):
        for x, c in [(1000, 500), (1000, 100), (500, 400)]:
            for n, d, f in [(64, 1, 1.1), (64, 4, 1.5), (16, 2, 1.2)]:
                lo = lemma5_lower(x, c, n, d, f)
                hi = lemma5_upper(x, c, n, d, f)
                l6 = lemma6_upper(x, c, n, d, f)
                model = decrease_steps_expected(x, c, n, d, f)
                assert model is not None
                assert lo <= model + 1  # floor slack
                if hi is not None:
                    assert model <= hi + 1
                if l6 is not None and hi is not None:
                    assert l6 <= hi + 1  # Lemma 6 sharpens Lemma 5

    def test_sensitive_to_f_insensitive_to_delta_n(self):
        """Paper's observation: iterations depend on f, barely on
        delta or n."""
        base = decrease_steps_expected(1000, 500, 64, 1, 1.1)
        other_delta = decrease_steps_expected(1000, 500, 64, 4, 1.1)
        other_n = decrease_steps_expected(1000, 500, 16, 1, 1.1)
        higher_f = decrease_steps_expected(1000, 500, 64, 1, 1.5)
        assert abs(base - other_delta) <= 2
        assert abs(base - other_n) <= 2
        assert higher_f < base / 2

    def test_scale_invariance_at_fixed_ratio(self):
        """Same c/x => same iteration count (paper's remark)."""
        a = decrease_steps_expected(1000, 500, 64, 1, 1.1)
        b = decrease_steps_expected(2000, 1000, 64, 1, 1.1)
        assert abs(a - b) <= 1

    def test_lower_bound_nonnegative(self):
        assert lemma5_lower(10, 5, 8, 1, 1.1) >= 0

    def test_upper_none_when_invalid(self):
        # f extremely close to 1 => validity condition can fail for big c/x
        assert lemma5_upper(10, 9, 8, 1, 1.0) is None

    def test_input_validation(self):
        with pytest.raises(ValueError):
            lemma5_lower(1, 1, 8, 1, 1.1)  # x must be > 1
        with pytest.raises(ValueError):
            lemma6_upper(10, 10, 8, 1, 1.1)  # need c < x
        with pytest.raises(ValueError):
            decrease_steps_expected(10, 5, 8, 1, 2.5)  # domain

    def test_cost_bounds_bundle(self):
        cb = CostBounds.compute(1000, 500, 64, 1, 1.1)
        assert cb.lower <= (cb.expected_model or 0)
        assert cb.improved_upper is not None
        assert cb.x == 1000 and cb.c == 500
