"""Tests for the G / C operators (Lemma 1 structure)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.theory.operators import GrowthOperator, consume_operator, growth_operator

params = st.tuples(
    st.integers(3, 200),          # n
    st.integers(1, 8),            # delta
    st.floats(1.0, 5.0),          # f
).filter(lambda t: t[1] < t[0])


class TestGrowthOperator:
    def test_lemma1_value(self):
        # hand-computed: n=4, delta=1, f=2, k=1:
        # G(1) = (2+1)*3 / (2 + 1*2 + 3) = 9/7
        assert growth_operator(1.0, 4, 1, 2.0) == pytest.approx(9 / 7)

    def test_f_one_is_identity_at_fixed_point_one(self):
        # with f = 1 the balanced state k = 1 is the fixed point
        for n in (2, 5, 64):
            assert growth_operator(1.0, n, 1, 1.0) == pytest.approx(1.0)

    def test_consume_is_g_at_inverse(self):
        assert consume_operator(1.3, 16, 2, 1.5) == pytest.approx(
            growth_operator(1.3, 16, 2, 1.0 / 1.5)
        )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            growth_operator(1.0, 1, 1, 1.1)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            growth_operator(1.0, 4, 4, 1.1)

    @given(params, st.floats(0.01, 100.0))
    def test_positive(self, nd_f, k):
        n, delta, f = nd_f
        assert growth_operator(k, n, delta, f) > 0

    @given(params)
    def test_monotone_in_k(self, nd_f):
        """G is non-decreasing in k; strictly increasing except in the
        degenerate full-machine case delta = n - 1, where balancing
        wipes the ratio out entirely (G is constant)."""
        n, delta, f = nd_f
        ks = [0.5, 1.0, 2.0, 5.0]
        vals = [growth_operator(k, n, delta, f) for k in ks]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))
        if delta < n - 1:
            assert all(b > a for a, b in zip(vals, vals[1:]))

    @given(params, st.floats(0.1, 50.0))
    def test_derivative_matches_finite_difference(self, nd_f, k):
        n, delta, f = nd_f
        G = GrowthOperator(n, delta, f)
        h = 1e-6 * max(k, 1.0)
        fd = (G(k + h) - G(k - h)) / (2 * h)
        assert G.derivative(k) == pytest.approx(fd, rel=1e-3, abs=1e-8)


class TestGrowthOperatorClass:
    def test_call_equals_function(self):
        G = GrowthOperator(16, 1, 1.1)
        assert G(1.0) == growth_operator(1.0, 16, 1, 1.1)

    def test_iterated(self):
        G = GrowthOperator(16, 1, 1.1)
        assert G.iterated(0)(1.0) == 1.0
        assert G.iterated(3)(1.0) == pytest.approx(G(G(G(1.0))))

    def test_iterated_negative_rejected(self):
        with pytest.raises(ValueError):
            GrowthOperator(16, 1, 1.1).iterated(-1)

    def test_inverse_direction(self):
        G = GrowthOperator(16, 2, 1.5)
        C = G.inverse_direction()
        assert C.f == pytest.approx(1 / 1.5)

    def test_invalid_f(self):
        with pytest.raises(ValueError):
            GrowthOperator(16, 1, 0.0)
