"""Tests for FIX and the Theorem 1/2 structure."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.theory.fixpoint import (
    A_const,
    contraction_modulus,
    fix,
    fix_limit,
    fix_trajectory_bound_violations,
    iterate_G,
    iterate_to_convergence,
)
from repro.theory.operators import GrowthOperator

provable = st.tuples(
    st.integers(3, 300),                 # n
    st.integers(1, 8),                   # delta
    st.floats(1.0, 8.9),                 # f
).filter(lambda t: t[1] < t[0] and t[2] < t[1] + 1)


class TestFix:
    def test_f_one_gives_one(self):
        for n in (2, 8, 100):
            for d in (1, min(4, n - 1)):
                assert fix(n, d, 1.0) == pytest.approx(1.0)

    def test_is_fixed_point_of_G(self):
        for n, d, f in [(8, 1, 1.5), (64, 4, 2.0), (100, 2, 1.1)]:
            G = GrowthOperator(n, d, f)
            k = fix(n, d, f)
            assert G(k) == pytest.approx(k, rel=1e-12)

    @given(provable)
    def test_fixed_point_property(self, ndf):
        n, d, f = ndf
        G = GrowthOperator(n, d, f)
        k = fix(n, d, f)
        assert G(k) == pytest.approx(k, rel=1e-9)

    @given(provable)
    def test_theorem2_bound(self, ndf):
        """FIX(n, delta, f) <= delta / (delta + 1 - f)."""
        n, d, f = ndf
        assert fix(n, d, f) <= fix_limit(d, f) + 1e-9

    def test_theorem2_limit(self):
        """FIX -> delta / (delta + 1 - f) as n -> inf."""
        d, f = 2, 1.7
        target = fix_limit(d, f)
        vals = [fix(n, d, f) for n in (10, 100, 1000, 100000)]
        errors = [abs(v - target) for v in vals]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-3

    def test_consumption_direction_below_one(self):
        """FIX(n, delta, 1/f) < 1 < FIX(n, delta, f) for f > 1."""
        n, d, f = 64, 1, 1.5
        assert fix(n, d, 1 / f) < 1.0 < fix(n, d, f)

    def test_lemma3_reversed_inequality_for_consumption(self):
        """FIX(n, delta, 1/f) >= delta/(delta+1-1/f) (Lemma 3(2))."""
        for n in (4, 16, 64, 1024):
            for d in (1, 2):
                for f in (1.1, 1.5, 1.9):
                    assert fix(n, d, 1 / f) >= d / (d + 1 - 1 / f) - 1e-12

    def test_A_const_value(self):
        # n=4, delta=1, f=2: A = (2 - 8 + 2 + 3) / 4 = -1/4
        assert A_const(4, 1, 2.0) == pytest.approx(-0.25)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fix(1, 1, 1.1)
        with pytest.raises(ValueError):
            fix(4, 4, 1.1)
        with pytest.raises(ValueError):
            fix(4, 1, 0.0)
        with pytest.raises(ValueError):
            fix_limit(1, 2.0)


class TestIteration:
    def test_trajectory_monotone_from_below(self):
        """Theorem 1: G^t(1) increases monotonically to FIX."""
        traj = iterate_G(64, 1, 1.5, 200)
        assert traj == sorted(traj)
        assert traj[-1] == pytest.approx(fix(64, 1, 1.5), rel=1e-6)

    def test_trajectory_never_exceeds_fix(self):
        assert list(fix_trajectory_bound_violations(64, 2, 2.5, 500)) == []

    def test_escape_from_imbalance(self):
        """Banach: convergence from any start, including above FIX."""
        val, _ = iterate_to_convergence(32, 1, 1.3, k0=50.0)
        assert val == pytest.approx(fix(32, 1, 1.3), rel=1e-9)
        val2, _ = iterate_to_convergence(32, 1, 1.3, k0=0.01)
        assert val2 == pytest.approx(fix(32, 1, 1.3), rel=1e-9)

    def test_iterate_G_length(self):
        assert len(iterate_G(8, 1, 1.1, 5)) == 6

    @given(provable)
    def test_convergence_everywhere_in_domain(self, ndf):
        n, d, f = ndf
        val, iters = iterate_to_convergence(n, d, f, tol=1e-10)
        assert val == pytest.approx(fix(n, d, f), rel=1e-6)
        assert iters < 1_000_000

    def test_contraction_modulus_below_one(self):
        """|G'| < 1 on [FIX/2, 2 FIX]: the Banach hypothesis."""
        for n, d, f in [(8, 1, 1.5), (64, 4, 2.0), (1000, 1, 1.1)]:
            k = fix(n, d, f)
            assert contraction_modulus(n, d, f, k / 2, 2 * k) < 1.0

    def test_contraction_modulus_invalid_interval(self):
        with pytest.raises(ValueError):
            contraction_modulus(8, 1, 1.1, 2.0, 1.0)

    def test_geometric_convergence_rate(self):
        """Error shrinks at least geometrically with the modulus."""
        n, d, f = 64, 1, 1.5
        target = fix(n, d, f)
        traj = iterate_G(n, d, f, 50)
        errs = [abs(v - target) for v in traj]
        mod = contraction_modulus(n, d, f, 1.0, target)
        for a, b in zip(errs, errs[1:]):
            if a > 1e-13:
                assert b <= a * (mod + 1e-9)
