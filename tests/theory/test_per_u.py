"""Tests for the per-u decomposition (the paper's E(v_{t,u}^2))."""

import math

import pytest

from repro.theory.counting import n_computations
from repro.theory.moments import exact_moments
from repro.theory.per_u import per_u_moments
from repro.theory.variation import _falling, _rgs_patterns


def brute_conditional(t: int, n: int, f: float) -> dict[int, tuple[float, float, float]]:
    """Exhaustive (weight, E[v], E[v^2]) per u, for small t."""
    m = n - 1
    out: dict[int, list[float]] = {}
    for pattern in _rgs_patterns(t, max_blocks=min(t, m)):
        u = (max(pattern) + 1) if pattern else 0
        weight = _falling(m, u) / m**t
        if weight == 0:
            continue
        x = 1.0
        y = [1.0] * u
        for blk in pattern:
            merged = (f * x + y[blk]) / 2
            x = merged
            y[blk] = merged
        acc = out.setdefault(u, [0.0, 0.0, 0.0])
        acc[0] += weight
        acc[1] += weight * x
        acc[2] += weight * x * x
    return {
        u: (w, e / w, e2 / w) for u, (w, e, e2) in out.items()
    }


class TestWeights:
    @pytest.mark.parametrize("t,n", [(5, 4), (7, 6), (6, 10), (9, 3)])
    def test_weights_equal_counting_formula(self, t, n):
        """w_u == n(t, u) * binom(m, u) / m^t — the paper's footnote,
        derived by the DP independently of the sieve."""
        m = n - 1
        dec = per_u_moments(t, n, 1.3)
        for u in range(dec.u_max + 1):
            expect = n_computations(t, u) * math.comb(m, u) / m**t
            assert dec.weights[u] == pytest.approx(expect, abs=1e-14)

    def test_weights_sum_to_one(self):
        dec = per_u_moments(10, 7, 1.2)
        assert dec.weights.sum() == pytest.approx(1.0)


class TestConditionalMoments:
    @pytest.mark.parametrize("t,n,f", [(6, 5, 1.3), (7, 6, 1.1), (5, 3, 1.7)])
    def test_against_enumeration(self, t, n, f):
        dec = per_u_moments(t, n, f)
        brute = brute_conditional(t, n, f)
        for u, (w, e, e2) in brute.items():
            assert dec.weights[u] == pytest.approx(w, abs=1e-12)
            assert dec.producer_mean(u) == pytest.approx(e, rel=1e-10)
            assert dec.producer_second_moment(u) == pytest.approx(e2, rel=1e-10)

    def test_fewer_candidates_higher_load(self):
        """Using fewer distinct partners keeps the producer's load
        high (it keeps averaging with its own past): E[v|u] decreasing
        in u."""
        dec = per_u_moments(8, 8, 1.4)
        means = [
            dec.producer_mean(u)
            for u in range(1, dec.u_max + 1)
            if dec.weights[u] > 0
        ]
        assert means == sorted(means, reverse=True)

    def test_vd_conditioned(self):
        dec = per_u_moments(8, 8, 1.4)
        for u in range(2, dec.u_max + 1):
            if dec.weights[u] > 0:
                assert 0 <= dec.vd_producer(u) < 1.0


class TestMarginals:
    @pytest.mark.parametrize("t,n,f", [(10, 6, 1.3), (15, 12, 1.15), (8, 4, 1.9)])
    def test_mixture_recovers_global_recursion(self, t, n, f):
        dec = per_u_moments(t, n, f)
        mo = exact_moments(t, n, f)
        e, a = dec.marginal_moments()
        assert e == pytest.approx(mo.e_producer[-1], rel=1e-12)
        assert a == pytest.approx(mo.e2_producer[-1], rel=1e-12)
        eo, ao = dec.marginal_other_moments()
        assert eo == pytest.approx(mo.e_other[-1], rel=1e-12)
        assert ao == pytest.approx(mo.e2_other[-1], rel=1e-12)

    def test_t_zero(self):
        dec = per_u_moments(0, 5, 1.5)
        assert dec.weights[0] == 1.0
        e, a = dec.marginal_moments()
        assert (e, a) == (1.0, 1.0)


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            per_u_moments(5, 1, 1.1)
        with pytest.raises(ValueError):
            per_u_moments(-1, 5, 1.1)
        with pytest.raises(ValueError):
            per_u_moments(5, 5, 0.0)

    def test_u_out_of_range(self):
        dec = per_u_moments(4, 5, 1.2)
        with pytest.raises(ValueError):
            dec.producer_mean(99)
        with pytest.raises(ValueError):
            dec.producer_mean(0)  # weight 0 after t >= 1 steps
