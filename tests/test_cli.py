"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_theorem3_runs(self, capsys):
        assert main(["theorem3"]) == 0
        out = capsys.readouterr().out
        assert "FIX" in out

    def test_lemma56_small(self, capsys):
        assert main(["lemma56", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out

    def test_fig6_csv_output(self, tmp_path, capsys, monkeypatch):
        # shrink the sweep via monkeypatching the default ns for speed
        import repro.experiments.figures as figs

        monkeypatch.setattr(figs, "FIG6_NS", (3, 5))
        assert main(["fig6", "--trials", "500", "--out", str(tmp_path)]) == 0
        assert any(tmp_path.glob("figure6_*.csv"))

    def test_scaling_small(self, capsys, monkeypatch):
        import repro.experiments.scaling as sc

        orig = sc.scaling_experiment
        monkeypatch.setattr(
            sc,
            "scaling_experiment",
            lambda runs, seed: orig(ns=(8,), steps=40, runs=1, seed=seed),
        )
        assert main(["scaling"]) == 0
        assert "rel spread" in capsys.readouterr().out

    def test_invalid_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestObservabilityCommands:
    def test_trace_records_and_reconciles(self, capsys):
        assert main(["trace", "--n", "8", "--steps", "40", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "events.total" in out
        assert "reconciliation with run aggregates: OK" in out

    def test_trace_writes_valid_ndjson(self, tmp_path, capsys):
        path = tmp_path / "t.ndjson"
        assert main([
            "trace", "--n", "8", "--steps", "40", "--seed", "1",
            "--trace-out", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "(schema valid)" in out
        from repro.observability import validate_ndjson

        assert sum(validate_ndjson(path).values()) > 0

    def test_trace_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        main(["trace", "--n", "8", "--steps", "40", "--seed", "1",
              "--trace-out", str(a)])
        main(["trace", "--n", "8", "--steps", "40", "--seed", "2",
              "--trace-out", str(b)])
        capsys.readouterr()
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "balance.ops" in out

    def test_trace_capacity_surfaces_evictions(self, capsys):
        assert main([
            "trace", "--n", "8", "--steps", "40", "--seed", "1",
            "--capacity", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "evicted (capacity 50" in out
        # survivors cannot add up to the run totals, so the summary
        # must neither claim a full trace nor cry reconciliation wolf
        assert "0 events evicted" not in out
        assert "reconciliation with run aggregates: skipped" in out

    def test_trace_unbounded_reports_complete(self, capsys):
        assert main(["trace", "--n", "8", "--steps", "40", "--seed", "1"]) == 0
        assert "0 events evicted (complete trace)" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "--n", "8", "--steps", "40"]) == 0
        out = capsys.readouterr().out
        assert "trigger.check" in out and "balance.deal" in out
        assert "% of total" in out

    def test_list_mentions_tools(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "trace" in out and "profile" in out
        assert "report" in out and "spans" in out


class TestAsyncAndChaosCommands:
    def test_trace_async_reconciles(self, capsys):
        assert main([
            "trace", "--engine", "async", "--n", "8", "--horizon", "20",
            "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "traced async run" in out
        assert "events.async_deliver" in out
        assert "reconciliation with run aggregates: OK" in out

    def test_trace_async_writes_valid_ndjson(self, tmp_path, capsys):
        path = tmp_path / "a.ndjson"
        assert main([
            "trace", "--engine", "async", "--n", "8", "--horizon", "20",
            "--trace-out", str(path),
        ]) == 0
        assert "(schema valid)" in capsys.readouterr().out
        from repro.observability import validate_ndjson

        counts = validate_ndjson(path)
        assert counts["async_deliver"] > 0

    def test_profile_async_sections(self, capsys):
        assert main([
            "profile", "--engine", "async", "--n", "8", "--horizon", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "profiled async run" in out
        assert "async.action" in out and "async.complete" in out

    def test_chaos_writes_schema_valid_json(self, tmp_path, capsys):
        assert main([
            "chaos", "--n", "16", "--horizon", "60", "--crash-frac", "0.15",
            "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Theorem-4 band" in out
        assert "wrote" in out
        import json

        from repro.experiments.resilience import validate_resilience

        doc = json.loads((tmp_path / "resilience.json").read_text())
        assert validate_resilience(doc) == []
        assert doc["config"]["crash_frac"] == 0.15

    def test_list_mentions_chaos(self, capsys):
        main(["list"])
        assert "chaos" in capsys.readouterr().out


class TestChurnCommand:
    def test_smoke_writes_schema_valid_json(self, tmp_path, capsys):
        assert main(["churn", "--smoke", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Theorem-4 band" in out
        assert "wrote" in out and "schema valid" in out
        import json

        from repro.experiments.dynamics import validate_dynamics

        doc = json.loads((tmp_path / "dynamics.json").read_text())
        assert validate_dynamics(doc) == []
        assert len({c["topology"] for c in doc["cells"]}) >= 3

    def test_smoke_deterministic_per_seed(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a", tmp_path / "b"
        assert main(["churn", "--smoke", "--seed", "3", "--out", str(a)]) == 0
        assert main(["churn", "--smoke", "--seed", "3", "--out", str(b)]) == 0
        capsys.readouterr()
        da = json.loads((a / "dynamics.json").read_text())
        db = json.loads((b / "dynamics.json").read_text())
        da.pop("backend"), db.pop("backend")
        assert da == db

    def test_axis_overrides(self, tmp_path, capsys):
        assert main([
            "churn", "--smoke", "--topologies", "ring",
            "--churn-rates", "0.0", "--skews", "0.0,0.5",
            "--out", str(tmp_path),
        ]) == 0
        import json

        doc = json.loads((tmp_path / "dynamics.json").read_text())
        assert len(doc["cells"]) == 2
        assert {c["topology"] for c in doc["cells"]} == {"ring"}

    def test_list_mentions_churn(self, capsys):
        main(["list"])
        assert "churn" in capsys.readouterr().out

    def test_report_dynamics(self, tmp_path, capsys):
        assert main(["churn", "--smoke", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        path = tmp_path / "dynamics.json"
        assert main(["report", "--dynamics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# dynamics report" in out
        assert "Theorem-4 band" in out


class TestUnknownNameExit2:
    """Unknown plan/profile/topology names exit 2 and list the choices."""

    def check(self, argv, needle, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "error: unknown" in err
        assert needle in err

    def test_chaos_unknown_plan(self, capsys):
        self.check(
            ["chaos", "--plan", "bogus"], "known plans: crash_burst", capsys
        )

    def test_serve_unknown_traffic(self, capsys):
        self.check(
            ["serve", "--smoke", "--traffic", "bogus"],
            "known traffic profiles: poisson",
            capsys,
        )

    def test_churn_unknown_topology(self, capsys):
        self.check(
            ["churn", "--smoke", "--topologies", "bogus"],
            "known topologies:",
            capsys,
        )

    def test_churn_bad_rate_list(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["churn", "--smoke", "--churn-rates", "a,b"])
        assert exc.value.code == 2
        assert "comma-separated numbers" in capsys.readouterr().err


class TestReportAndSpansCommands:
    def test_report_clean_sync_run(self, capsys):
        assert main(["report", "--n", "8", "--steps", "60", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "**Verdict: all monitors OK.**" in out
        assert "`theorem4_band`" in out
        assert "## Balancing-operation spans" in out

    def test_report_html_artifact(self, tmp_path, capsys):
        dest = tmp_path / "run.html"
        assert main([
            "report", "--n", "8", "--steps", "60",
            "--report-out", str(dest),
        ]) == 0
        html = dest.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<h2>Monitor verdicts</h2>" in html

    @pytest.mark.tier2
    def test_report_faulted_tells_the_breach_story(self, capsys):
        assert main(["report", "--faulted", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "monitor breach" in out
        assert "**theorem4_band**" in out
        assert "recovered at" in out
        assert "crash regime" in out

    def test_spans_live_run(self, capsys):
        assert main(["spans", "--n", "8", "--steps", "60"]) == 0
        out = capsys.readouterr().out
        assert "outcomes" in out and "'completed'" in out
        assert "worst span:" in out

    def test_spans_from_trace_file(self, tmp_path, capsys):
        from repro.observability import SpanRecorder, Tracer
        from repro.params import LBParams
        from repro.simulation.driver import run_simulation
        from repro.workload import Section7Workload

        tracer = Tracer()
        run_simulation(
            8, LBParams(f=1.3, delta=2, C=4),
            Section7Workload(8, 60, layout_rng=0), 60, seed=0,
            tracer=tracer, spans=SpanRecorder(tracer),
        )
        path = tmp_path / "t.ndjson"
        tracer.to_ndjson(path)
        assert main(["spans", "--trace-in", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"spans from {path}" in out
        assert "worst span:" in out

    def test_spans_from_spanless_trace_is_graceful(self, tmp_path, capsys):
        path = tmp_path / "t.ndjson"
        assert main([
            "trace", "--n", "8", "--steps", "40", "--trace-out", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["spans", "--trace-in", str(path)]) == 0
        assert "(no spans recorded)" in capsys.readouterr().out

    def test_compare_clean_exits_zero(self, capsys):
        ref = "results/BENCH_engine.json"
        assert main([
            "report", "--compare", ref, ref, "--tolerance", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "no drift" in out

    def test_compare_drift_exits_nonzero(self, tmp_path, capsys):
        import json

        ref = "results/BENCH_engine.json"
        doc = json.loads(open(ref).read())
        doc["runs"][0]["total_ops"] += 1
        cand = tmp_path / "cand.json"
        cand.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as exc:
            main(["report", "--compare", ref, str(cand)])
        assert exc.value.code == 2
        assert "DRIFT" in capsys.readouterr().out


class TestBackendErrors:
    def test_bench_unknown_backend_exits_2_with_listing(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--backend", "bogus", "--sizes", "8"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "native" in err          # the known-backend listing

    def test_chaos_unknown_backend_exits_2_with_listing(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "--backend", "bogus"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "native" in err

    def test_bench_unknown_profile_exits_2_with_listing(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--profile", "bogus", "--sizes", "8"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown profile 'bogus'" in err
        assert "quiet, stationary, growth" in err  # the known-name listing


class TestBenchSmokeFlags:
    def test_single_size_profile_and_ticks(self, tmp_path, capsys):
        import json

        assert main([
            "bench", "--profile", "quiet", "-n", "64", "--ticks", "10",
            "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        doc = json.loads((tmp_path / "BENCH_engine.json").read_text())
        assert [r["profile"] for r in doc["runs"]] == ["quiet"]
        assert doc["runs"][0]["n"] == 64
        assert doc["runs"][0]["ticks"] == 10
        assert doc["runs"][0]["engine"] == "columnar"
        # the fast-path cross-check ran on the same narrowed grid
        assert [r["engine"] for r in doc["fastpath"]["runs"]] == ["fast"]


class TestServeCommand:
    def test_smoke_chaos_writes_schema_valid_service_json(
        self, tmp_path, capsys
    ):
        assert main([
            "serve", "--smoke", "--chaos", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "shedding" in out
        assert "wrote" in out
        import json

        from repro.service import validate_service

        doc = json.loads((tmp_path / "service.json").read_text())
        assert validate_service(doc) == []
        assert doc["final_state"] == "healthy"
        assert any(tr["state"] == "shedding" for tr in doc["timeline"])

    def test_record_then_replay_reproduces_slo(self, tmp_path, capsys):
        offered = tmp_path / "offered.json"
        assert main([
            "serve", "--smoke", "--chaos", "--out", str(tmp_path / "a"),
            "--record", str(offered),
        ]) == 0
        capsys.readouterr()
        assert main([
            "serve", "--smoke", "--chaos", "--out", str(tmp_path / "b"),
            "--replay", str(offered),
        ]) == 0
        assert "replayed" in capsys.readouterr().out
        import json

        a = json.loads((tmp_path / "a" / "service.json").read_text())
        b = json.loads((tmp_path / "b" / "service.json").read_text())
        assert a["slo"] == b["slo"]
        assert a["timeline"] == b["timeline"]

    def test_record_and_replay_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([
                "serve", "--record", str(tmp_path / "a.json"),
                "--replay", str(tmp_path / "b.json"),
            ])

    def test_quiet_default_run(self, tmp_path, capsys):
        assert main([
            "serve", "--rate", "1.0", "--horizon", "20",
            "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "final state        : healthy" in out

    def test_report_service_renders_sections(self, tmp_path, capsys):
        assert main([
            "serve", "--smoke", "--chaos", "--out", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", "--service", str(tmp_path / "service.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "### SLO verdicts" in out
        assert "### Degradation-state timeline" in out
        assert "### Worst-sojourn waterfall" in out

    def test_report_service_rejects_invalid_doc(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        with pytest.raises(SystemExit, match="not a valid service"):
            main(["report", "--service", str(bad)])

    def test_list_mentions_serve(self, capsys):
        main(["list"])
        assert "serve" in capsys.readouterr().out


class TestTelemetryCli:
    def test_trace_export_unknown_format_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main([
                "trace", "--export", "bogus",
                "--trace-out", str(tmp_path / "t.json"),
            ])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown export format 'bogus'" in err
        assert "chrome" in err  # the known-format listing

    def test_trace_export_requires_trace_out(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "--export", "chrome"])
        assert exc.value.code == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_trace_export_chrome_writes_perfetto_json(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "trace.json"
        assert main([
            "trace", "--n", "8", "--steps", "40", "--seed", "1",
            "--export", "chrome", "--trace-out", str(path),
        ]) == 0
        assert "open in Perfetto" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"][0]["ph"] == "M"
        # a plain traced run has no spans, but its balancing events
        # render as instants on their processors' lanes
        assert any(e.get("ph") == "i" for e in doc["traceEvents"])

    def test_bench_appends_history_and_compare_reads_it(
        self, tmp_path, capsys
    ):
        import json

        args = [
            "bench", "--profile", "quiet", "-n", "64", "--ticks", "10",
            "--out", str(tmp_path),
        ]
        assert main(args) == 0
        history = tmp_path / "bench_history.ndjson"
        assert "bench_history.ndjson" in capsys.readouterr().out
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        rec = json.loads(lines[0])
        assert rec["schema"] == "repro.bench_history.v1"
        assert {"git_rev", "date", "backend", "runs"} <= rec.keys()
        assert rec["runs"][0]["n"] == 64
        # a second run appends (never truncates) ...
        assert main(args) == 0
        assert len(history.read_text().splitlines()) == 2
        capsys.readouterr()
        # ... and the last record serves as a comparison baseline
        assert main([
            "report", "--compare", str(history),
            str(tmp_path / "BENCH_engine.json"),
        ]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_bench_trace_out_writes_merged_timeline(
        self, tmp_path, capsys
    ):
        import json

        trace = tmp_path / "bench_trace.json"
        assert main([
            "bench", "--profile", "quiet", "-n", "64", "--ticks", "10",
            "--jobs", "2", "--backend", "multiprocessing",
            "--out", str(tmp_path), "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        begins = [e for e in doc["traceEvents"] if e.get("ph") == "B"]
        run_ids = {e["args"]["run_id"] for e in begins}
        assert len(run_ids) == 1  # one propagated id across all workers
        assert begins[0]["name"] == "bench:grid"

    def test_serve_telemetry_serves_and_stops(self, tmp_path, capsys):
        assert main([
            "serve", "--smoke", "--telemetry", "0", "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry: serving http://127.0.0.1:" in out
        assert "samples served" in out and "(now stopped)" in out

    def test_top_once_against_live_endpoint(self, capsys):
        from repro.observability import TelemetrySampler
        from repro.observability.export import TelemetryServer

        sampler = TelemetrySampler(interval=0.0)
        sampler.sample(0.0)
        with TelemetryServer(sampler) as server:
            assert main(["top", "--url", server.url, "--once"]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_top_once_unreachable_exits_1(self, capsys):
        assert main([
            "top", "--url", "http://127.0.0.1:9/metrics", "--once",
        ]) == 1
        assert "cannot scrape" in capsys.readouterr().err

    def test_list_mentions_telemetry(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "telemetry" in out and "top" in out
