"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_theorem3_runs(self, capsys):
        assert main(["theorem3"]) == 0
        out = capsys.readouterr().out
        assert "FIX" in out

    def test_lemma56_small(self, capsys):
        assert main(["lemma56", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out

    def test_fig6_csv_output(self, tmp_path, capsys, monkeypatch):
        # shrink the sweep via monkeypatching the default ns for speed
        import repro.experiments.figures as figs

        monkeypatch.setattr(figs, "FIG6_NS", (3, 5))
        assert main(["fig6", "--trials", "500", "--out", str(tmp_path)]) == 0
        assert any(tmp_path.glob("figure6_*.csv"))

    def test_scaling_small(self, capsys, monkeypatch):
        import repro.experiments.scaling as sc

        orig = sc.scaling_experiment
        monkeypatch.setattr(
            sc,
            "scaling_experiment",
            lambda runs, seed: orig(ns=(8,), steps=40, runs=1, seed=seed),
        )
        assert main(["scaling"]) == 0
        assert "rel spread" in capsys.readouterr().out

    def test_invalid_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
