"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out

    def test_theorem3_runs(self, capsys):
        assert main(["theorem3"]) == 0
        out = capsys.readouterr().out
        assert "FIX" in out

    def test_lemma56_small(self, capsys):
        assert main(["lemma56", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "measured" in out

    def test_fig6_csv_output(self, tmp_path, capsys, monkeypatch):
        # shrink the sweep via monkeypatching the default ns for speed
        import repro.experiments.figures as figs

        monkeypatch.setattr(figs, "FIG6_NS", (3, 5))
        assert main(["fig6", "--trials", "500", "--out", str(tmp_path)]) == 0
        assert any(tmp_path.glob("figure6_*.csv"))

    def test_scaling_small(self, capsys, monkeypatch):
        import repro.experiments.scaling as sc

        orig = sc.scaling_experiment
        monkeypatch.setattr(
            sc,
            "scaling_experiment",
            lambda runs, seed: orig(ns=(8,), steps=40, runs=1, seed=seed),
        )
        assert main(["scaling"]) == 0
        assert "rel spread" in capsys.readouterr().out

    def test_invalid_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestObservabilityCommands:
    def test_trace_records_and_reconciles(self, capsys):
        assert main(["trace", "--n", "8", "--steps", "40", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "events.total" in out
        assert "reconciliation with run aggregates: OK" in out

    def test_trace_writes_valid_ndjson(self, tmp_path, capsys):
        path = tmp_path / "t.ndjson"
        assert main([
            "trace", "--n", "8", "--steps", "40", "--seed", "1",
            "--trace-out", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "(schema valid)" in out
        from repro.observability import validate_ndjson

        assert sum(validate_ndjson(path).values()) > 0

    def test_trace_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a.ndjson", tmp_path / "b.ndjson"
        main(["trace", "--n", "8", "--steps", "40", "--seed", "1",
              "--trace-out", str(a)])
        main(["trace", "--n", "8", "--steps", "40", "--seed", "2",
              "--trace-out", str(b)])
        capsys.readouterr()
        assert main(["trace", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "balance.ops" in out

    def test_profile(self, capsys):
        assert main(["profile", "--n", "8", "--steps", "40"]) == 0
        out = capsys.readouterr().out
        assert "trigger.check" in out and "balance.deal" in out

    def test_list_mentions_tools(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "trace" in out and "profile" in out


class TestAsyncAndChaosCommands:
    def test_trace_async_reconciles(self, capsys):
        assert main([
            "trace", "--engine", "async", "--n", "8", "--horizon", "20",
            "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "traced async run" in out
        assert "events.async_deliver" in out
        assert "reconciliation with run aggregates: OK" in out

    def test_trace_async_writes_valid_ndjson(self, tmp_path, capsys):
        path = tmp_path / "a.ndjson"
        assert main([
            "trace", "--engine", "async", "--n", "8", "--horizon", "20",
            "--trace-out", str(path),
        ]) == 0
        assert "(schema valid)" in capsys.readouterr().out
        from repro.observability import validate_ndjson

        counts = validate_ndjson(path)
        assert counts["async_deliver"] > 0

    def test_profile_async_sections(self, capsys):
        assert main([
            "profile", "--engine", "async", "--n", "8", "--horizon", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "profiled async run" in out
        assert "async.action" in out and "async.complete" in out

    def test_chaos_writes_schema_valid_json(self, tmp_path, capsys):
        assert main([
            "chaos", "--n", "16", "--horizon", "60", "--crash-frac", "0.15",
            "--out", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Theorem-4 band" in out
        assert "wrote" in out
        import json

        from repro.experiments.resilience import validate_resilience

        doc = json.loads((tmp_path / "resilience.json").read_text())
        assert validate_resilience(doc) == []
        assert doc["config"]["crash_frac"] == 0.15

    def test_list_mentions_chaos(self, capsys):
        main(["list"])
        assert "chaos" in capsys.readouterr().out
