#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Scans the root markdown files and everything under ``docs/`` for
inline links (``[text](target)``), skips external URLs and bare
anchors, and verifies that each relative target exists — and, when the
link carries a ``#fragment`` pointing at a markdown file, that the
target file has a heading with that GitHub-style anchor.

Stdlib only, no network.  Exit status 0 when every link resolves,
1 otherwise (one line per broken link).  Run from anywhere:

    python tools/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: inline markdown links; [text](target) with no nested parens
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> list[Path]:
    files = sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").rglob("*.md"))
    return [f for f in files if f.is_file()]


def github_anchor(heading: str) -> str:
    """The anchor GitHub generates for a heading line."""
    text = heading.strip().lower()
    text = text.replace("`", "")                  # code spans vanish
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = re.sub(r"[^\w\- ]", "", text)          # punctuation vanishes
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_anchor(m.group(1)))
    return anchors


def links_of(path: Path) -> list[str]:
    links: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(LINK_RE.findall(line))
    return links


def main() -> int:
    errors: list[str] = []
    checked = 0
    for md in markdown_files():
        for target in links_of(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            if target.startswith("#"):  # same-file anchor
                checked += 1
                if target[1:] not in anchors_of(md):
                    errors.append(f"{md.relative_to(ROOT)}: broken anchor {target}")
                continue
            checked += 1
            rel, _, fragment = target.partition("#")
            dest = (md.parent / rel).resolve()
            if not dest.exists():
                errors.append(
                    f"{md.relative_to(ROOT)}: broken link {target} "
                    f"(no such file {rel})"
                )
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    errors.append(
                        f"{md.relative_to(ROOT)}: broken anchor {target}"
                    )
    for err in errors:
        print(err)
    print(
        f"check_links: {checked} relative links checked, "
        f"{len(errors)} broken",
        file=sys.stderr,
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
